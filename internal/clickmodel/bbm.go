package clickmodel

import "math"

// BBM is the Bayesian browsing model of Liu, Guo & Faloutsos. Its browsing
// layer is exactly UBM's — examination depends on the position and the
// preceding click position — but relevance is treated as a random variable
// with a posterior distribution rather than a point estimate.
//
// The implementation follows the BBM paper's key observation: for a fixed
// browsing layer the relevance posterior of a (query, doc) has the form
//
//	p(R | log) ∝ R^{#clicks} · Π_k (1 - gamma_k·R)^{n_k}
//
// where n_k counts the non-clicked impressions observed under examination
// probability gamma_k. Only those compact counts are stored (the "petabyte
// scale" trick); the posterior is evaluated on a grid on demand.
//
// In this reproduction the gammas are themselves estimated by running the
// UBM EM on the same log first, which the paper treats as equivalent for
// browsing purposes (Section II-B: "UBM and BBM can be considered
// equivalent" for the browsing model).
type BBM struct {
	Browse *UBM // fitted browsing layer

	// GridSize is the number of grid points on [0,1] for posterior
	// evaluation (default 51).
	GridSize int

	clicks   map[qd]float64
	nonClick map[qd]map[float64]float64 // gamma value -> count
}

// NewBBM returns a BBM with default hyper-parameters.
func NewBBM() *BBM { return &BBM{GridSize: 51} }

// Name implements Model.
func (m *BBM) Name() string { return "BBM" }

// Fit implements Model: fit the UBM browsing layer, then accumulate the
// sufficient statistics for every (query, doc) relevance posterior in a
// single pass.
func (m *BBM) Fit(sessions []Session) error {
	if m.GridSize < 3 {
		m.GridSize = 51
	}
	if m.Browse == nil {
		m.Browse = NewUBM()
	}
	if err := m.Browse.Fit(sessions); err != nil {
		return err
	}
	m.clicks = make(map[qd]float64)
	m.nonClick = make(map[qd]map[float64]float64)
	for _, s := range sessions {
		prev := prevClickIndex(s)
		for i, d := range s.Docs {
			k := qd{s.Query, d}
			if s.Clicks[i] {
				m.clicks[k]++
				continue
			}
			g := m.Browse.gamma(i, prev[i])
			inner := m.nonClick[k]
			if inner == nil {
				inner = make(map[float64]float64)
				m.nonClick[k] = inner
			}
			inner[g]++
		}
	}
	return nil
}

// PosteriorMean returns E[R | log] for the (query, doc) pair under a
// uniform prior, evaluated on the grid. Unseen pairs return the prior
// mean 0.5.
func (m *BBM) PosteriorMean(query, doc string) float64 {
	k := qd{query, doc}
	c := m.clicks[k]
	nc := m.nonClick[k]
	if c == 0 && len(nc) == 0 {
		return 0.5
	}
	// Evaluate log-weights first and normalise by their maximum so the
	// posterior does not underflow on documents with many impressions.
	step := 1.0 / float64(m.GridSize-1)
	lws := make([]float64, m.GridSize)
	maxLW := math.Inf(-1)
	for i := 0; i < m.GridSize; i++ {
		r := float64(i) * step
		lw := 0.0
		if c > 0 {
			lw += c * log(r)
		}
		for g, n := range nc {
			lw += n * log(1-g*r)
		}
		lws[i] = lw
		if lw > maxLW {
			maxLW = lw
		}
	}
	var num, den float64
	for i, lw := range lws {
		w := math.Exp(lw - maxLW)
		num += w * float64(i) * step
		den += w
	}
	if den == 0 {
		return 0.5
	}
	return num / den
}

// ClickProbs implements Model using the UBM forward recursion with the
// posterior-mean relevance in place of a point-estimated alpha.
func (m *BBM) ClickProbs(s Session) []float64 {
	n := len(s.Docs)
	out := make([]float64, n)
	pLast := make([]float64, n+1)
	pLast[0] = 1
	for i, d := range s.Docs {
		a := m.PosteriorMean(s.Query, d)
		var pc float64
		for j := 0; j <= i; j++ {
			pc += pLast[j] * a * m.Browse.gamma(i, j)
		}
		out[i] = pc
		for j := 0; j <= i; j++ {
			pLast[j] *= 1 - a*m.Browse.gamma(i, j)
		}
		pLast[i+1] = pc
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *BBM) SessionLogLikelihood(s Session) float64 {
	prev := prevClickIndex(s)
	ll := 0.0
	for i, d := range s.Docs {
		p := m.PosteriorMean(s.Query, d) * m.Browse.gamma(i, prev[i])
		ll += bernoulliLL(p, s.Clicks[i])
	}
	return ll
}
