package clickmodel

import "math"

// Evaluation holds aggregate quality metrics for a fitted click model on a
// held-out session log, matching the measures customary in the click-model
// literature (PyClick et al.).
type Evaluation struct {
	Model string
	// LogLikelihood is the mean per-session log-likelihood.
	LogLikelihood float64
	// Perplexity is the overall click-prediction perplexity (lower is
	// better, 1 is perfect).
	Perplexity float64
	// PerplexityByRank is the per-position perplexity.
	PerplexityByRank []float64
	Sessions         int
}

// LogLikelihood returns the mean per-session log-likelihood of the model
// on the log.
func LogLikelihood(m Model, sessions []Session) float64 {
	if len(sessions) == 0 {
		return 0
	}
	ll := 0.0
	for _, s := range sessions {
		ll += m.SessionLogLikelihood(s)
	}
	return ll / float64(len(sessions))
}

// perplexityAccum holds the running per-rank log2 sums of a perplexity
// computation, so evaluation folds into a single pass over the log.
type perplexityAccum struct {
	sum, cnt []float64
	scratch  []float64
}

func newPerplexityAccum(n int) *perplexityAccum {
	return &perplexityAccum{sum: make([]float64, n), cnt: make([]float64, n)}
}

// add scores one session through the model (via its in-place path when
// available, reusing the accumulator's scratch buffer).
func (a *perplexityAccum) add(m Model, s Session) {
	probs := clickProbsInto(m, s, a.scratch)
	a.scratch = probs
	for i, c := range s.Clicks {
		q := clampProb(probs[i])
		if c {
			a.sum[i] += math.Log2(q)
		} else {
			a.sum[i] += math.Log2(1 - q)
		}
		a.cnt[i]++
	}
}

// finish folds the running sums into the overall and per-rank
// perplexities.
func (a *perplexityAccum) finish() (overall float64, byRank []float64) {
	byRank = make([]float64, len(a.sum))
	var tot, totCnt float64
	for i := range a.sum {
		if a.cnt[i] > 0 {
			byRank[i] = math.Exp2(-a.sum[i] / a.cnt[i])
		}
		tot += a.sum[i]
		totCnt += a.cnt[i]
	}
	if totCnt > 0 {
		overall = math.Exp2(-tot / totCnt)
	}
	return overall, byRank
}

// Perplexity returns the overall and per-rank click perplexity of the
// model's marginal click probabilities:
//
//	p_i = 2^{ -1/N · Σ ( c log2 q + (1-c) log2(1-q) ) }
func Perplexity(m Model, sessions []Session) (overall float64, byRank []float64) {
	n := maxPositions(sessions)
	if n == 0 {
		return 0, nil
	}
	acc := newPerplexityAccum(n)
	for _, s := range sessions {
		acc.add(m, s)
	}
	return acc.finish()
}

// Evaluate fits nothing; it scores an already-fitted model on sessions.
// Log-likelihood and perplexity are folded into one pass over the log
// with a reused scoring buffer.
func Evaluate(m Model, sessions []Session) Evaluation {
	ev := Evaluation{Model: m.Name(), Sessions: len(sessions)}
	n := maxPositions(sessions)
	if n == 0 {
		return ev
	}
	acc := newPerplexityAccum(n)
	ll := 0.0
	for _, s := range sessions {
		ll += m.SessionLogLikelihood(s)
		acc.add(m, s)
	}
	ev.LogLikelihood = ll / float64(len(sessions))
	ev.Perplexity, ev.PerplexityByRank = acc.finish()
	return ev
}

// All returns one fresh instance of every registered model, in
// registration order — for the built-ins, the order they appear in the
// paper's related-work taxonomy.
func All() []Model {
	names := Names()
	out := make([]Model, 0, len(names))
	for _, name := range names {
		m, err := New(name)
		if err != nil { // unreachable: Names and New share the registry
			panic(err)
		}
		out = append(out, m)
	}
	return out
}
