package clickmodel

import "math"

// Evaluation holds aggregate quality metrics for a fitted click model on a
// held-out session log, matching the measures customary in the click-model
// literature (PyClick et al.).
type Evaluation struct {
	Model string
	// LogLikelihood is the mean per-session log-likelihood.
	LogLikelihood float64
	// Perplexity is the overall click-prediction perplexity (lower is
	// better, 1 is perfect).
	Perplexity float64
	// PerplexityByRank is the per-position perplexity.
	PerplexityByRank []float64
	Sessions         int
}

// LogLikelihood returns the mean per-session log-likelihood of the model
// on the log.
func LogLikelihood(m Model, sessions []Session) float64 {
	if len(sessions) == 0 {
		return 0
	}
	ll := 0.0
	for _, s := range sessions {
		ll += m.SessionLogLikelihood(s)
	}
	return ll / float64(len(sessions))
}

// Perplexity returns the overall and per-rank click perplexity of the
// model's marginal click probabilities:
//
//	p_i = 2^{ -1/N · Σ ( c log2 q + (1-c) log2(1-q) ) }
func Perplexity(m Model, sessions []Session) (overall float64, byRank []float64) {
	n := maxPositions(sessions)
	if n == 0 {
		return 0, nil
	}
	sum := make([]float64, n)
	cnt := make([]float64, n)
	for _, s := range sessions {
		probs := m.ClickProbs(s)
		for i, c := range s.Clicks {
			q := clampProb(probs[i])
			if c {
				sum[i] += math.Log2(q)
			} else {
				sum[i] += math.Log2(1 - q)
			}
			cnt[i]++
		}
	}
	byRank = make([]float64, n)
	var tot, totCnt float64
	for i := 0; i < n; i++ {
		if cnt[i] > 0 {
			byRank[i] = math.Exp2(-sum[i] / cnt[i])
		}
		tot += sum[i]
		totCnt += cnt[i]
	}
	if totCnt > 0 {
		overall = math.Exp2(-tot / totCnt)
	}
	return overall, byRank
}

// Evaluate fits nothing; it scores an already-fitted model on sessions.
func Evaluate(m Model, sessions []Session) Evaluation {
	overall, byRank := Perplexity(m, sessions)
	return Evaluation{
		Model:            m.Name(),
		LogLikelihood:    LogLikelihood(m, sessions),
		Perplexity:       overall,
		PerplexityByRank: byRank,
		Sessions:         len(sessions),
	}
}

// All returns one fresh instance of every registered model, in
// registration order — for the built-ins, the order they appear in the
// paper's related-work taxonomy.
func All() []Model {
	names := Names()
	out := make([]Model, 0, len(names))
	for _, name := range names {
		m, err := New(name)
		if err != nil { // unreachable: Names and New share the registry
			panic(err)
		}
		out = append(out, m)
	}
	return out
}
