package clickmodel

// v2 (zero-parse) snapshot support for the macro click models that
// serve traffic: PBM and DBN. A v1 artifact stores per-pair parameters
// as a varint stream decoded into map[qd]float64 on every load — O(log)
// work and a private heap copy per process. A v2 artifact stores the
// *serving* form: two frozen vocabularies (queries, docs), a flat
// (query ID, doc ID) pair table with an open-addressed probe index, and
// one dense value array per parameter set, all as raw little-endian
// sections. MappedPBM/MappedDBN wrap zero-copy views over those bytes
// (typically a read-only file mapping owned by internal/mmap) and score
// identically to their map-backed twins; they do not refit.
//
// Section layout (v2 directory tags):
//
//	meta    bytes    raw-encoded scalars (priors; DBN's gamma)
//	gamma   float64  PBM per-position examination probabilities
//	q.blob  bytes    query vocabulary term bytes
//	q.offs  uint32   query vocabulary offsets
//	q.tabl  int32    query vocabulary probe table
//	d.blob  bytes    doc vocabulary term bytes
//	d.offs  uint32   doc vocabulary offsets
//	d.tabl  int32    doc vocabulary probe table
//	p.q     int32    pair -> query ID
//	p.d     int32    pair -> doc ID
//	p.tabl  int32    open-addressed (qid, did) probe table
//	a.vals  float64  attractiveness per pair (PBM alpha, DBN a)
//	s.vals  float64  DBN satisfaction per pair
//
// A probe-table miss — including one caused by a corrupted table that
// slipped past the CRCs — degrades to the model's prior, exactly the
// behaviour of a map miss; it can never alias two pairs, because every
// hit is confirmed against the pair arrays.

import (
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/snapshot"
	"repro/internal/textproc"
)

// ErrMappedImmutable is returned by the Fit and Load methods of mapped
// models: an artifact-backed model is a read-only serving view. Refit
// the map-backed model and export a new artifact instead.
var ErrMappedImmutable = fmt.Errorf("clickmodel: mapped models are immutable serving views")

// minPairTable mirrors the vocabulary's minimum probe-table size.
const minPairTable = 16

// pairHash mixes a (query ID, doc ID) pair into the probe-table hash.
// It must be identical on the freeze and lookup sides; nothing else
// depends on it.
func pairHash(qid, did int32) uint64 {
	h := uint64(uint32(qid))*0x9E3779B97F4A7C15 ^ uint64(uint32(did))*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// frozenPairs is the immutable flat form of one or more map[qd]float64
// parameter sets sharing a key universe: interned query/doc
// vocabularies, pair ID arrays, and a probe table. Values live in
// separate dense arrays (one per parameter set) indexed by pair ID.
type frozenPairs struct {
	qv, dv *textproc.FrozenVocab
	pairQ  []int32
	pairD  []int32
	tab    []int32
	mask   uint64
}

// NumPairs returns the number of interned (query, doc) pairs.
func (p *frozenPairs) NumPairs() int { return len(p.pairQ) }

// find resolves a (query, doc) pair to its dense ID; a miss anywhere
// along the way (unknown query, unknown doc, absent pair) returns
// false and the caller falls back to the prior.
func (p *frozenPairs) find(q, d string) (int32, bool) {
	qid, ok := p.qv.Lookup(q)
	if !ok {
		return 0, false
	}
	did, ok := p.dv.Lookup(d)
	if !ok {
		return 0, false
	}
	for i := pairHash(qid, did) & p.mask; ; i = (i + 1) & p.mask {
		id := p.tab[i]
		if id < 0 {
			return 0, false
		}
		// Bounds-check the probe: unvalidated mappings (trusted local
		// loads skip the O(n) scan) degrade to misses, never panics.
		if uint(id) >= uint(len(p.pairQ)) {
			return 0, false
		}
		if p.pairQ[id] == qid && p.pairD[id] == did {
			return id, true
		}
	}
}

// validate runs the O(n) per-element checks pairsFromArtifact skips:
// every pair references in-range vocabulary IDs and every probe bucket
// is empty or a valid pair ID, plus the underlying vocabularies' own
// deep checks. Verified load paths call this before install.
func (p *frozenPairs) validate() error {
	if err := p.qv.Validate(); err != nil {
		return fmt.Errorf("%w: query vocab: %v", snapshot.ErrCorrupt, err)
	}
	if err := p.dv.Validate(); err != nil {
		return fmt.Errorf("%w: doc vocab: %v", snapshot.ErrCorrupt, err)
	}
	n := len(p.pairQ)
	for i := 0; i < n; i++ {
		if int(p.pairQ[i]) >= p.qv.Len() || p.pairQ[i] < 0 || int(p.pairD[i]) >= p.dv.Len() || p.pairD[i] < 0 {
			return fmt.Errorf("%w: pair %d references out-of-range vocabulary IDs", snapshot.ErrCorrupt, i)
		}
	}
	for i, id := range p.tab {
		if id < -1 || int(id) >= n {
			return fmt.Errorf("%w: pair bucket %d holds id %d of %d pairs", snapshot.ErrCorrupt, i, id, n)
		}
	}
	return nil
}

// freezePairs interns the union of the sets' keys (sorted, so identical
// parameters produce identical artifacts) and materialises one dense
// value array per set, filling absent keys with that set's default —
// which preserves scoring semantics exactly, since a map miss returns
// the same default.
func freezePairs(sets []map[qd]float64, defaults []float64) (*frozenPairs, [][]float64) {
	seen := make(map[qd]struct{})
	var keys []qd
	for _, m := range sets {
		for k := range m {
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].q != keys[j].q {
			return keys[i].q < keys[j].q
		}
		return keys[i].d < keys[j].d
	})

	n := len(keys)
	qv := textproc.NewTermVocab(n)
	dv := textproc.NewTermVocab(n)
	p := &frozenPairs{pairQ: make([]int32, n), pairD: make([]int32, n)}
	for i, k := range keys {
		p.pairQ[i] = qv.Add(k.q)
		p.pairD[i] = dv.Add(k.d)
	}
	p.qv = textproc.FreezeVocab(qv)
	p.dv = textproc.FreezeVocab(dv)

	size := minPairTable
	for size < 2*n {
		size <<= 1
	}
	p.tab = make([]int32, size)
	for i := range p.tab {
		p.tab[i] = -1
	}
	p.mask = uint64(size - 1)
	for i := 0; i < n; i++ {
		h := pairHash(p.pairQ[i], p.pairD[i])
		for j := h & p.mask; ; j = (j + 1) & p.mask {
			if p.tab[j] < 0 {
				p.tab[j] = int32(i)
				break
			}
		}
	}

	vals := make([][]float64, len(sets))
	for si, m := range sets {
		v := make([]float64, n)
		for i, k := range keys {
			if x, ok := m[k]; ok {
				v[i] = x
			} else {
				v[i] = defaults[si]
			}
		}
		vals[si] = v
	}
	return p, vals
}

// writePairs adds the shared pair sections to a v2 writer.
func writePairs(w *snapshot.V2Writer, p *frozenPairs) {
	w.Bytes("q.blob", p.qv.Blob())
	w.Uint32s("q.offs", p.qv.Offsets())
	w.Int32s("q.tabl", p.qv.Table())
	w.Bytes("d.blob", p.dv.Blob())
	w.Uint32s("d.offs", p.dv.Offsets())
	w.Int32s("d.tabl", p.dv.Table())
	w.Int32s("p.q", p.pairQ)
	w.Int32s("p.d", p.pairD)
	w.Int32s("p.tabl", p.tab)
}

// readVocab reconstitutes one frozen vocabulary from its three
// prefixed sections.
func readVocab(a *snapshot.V2Artifact, prefix string) (*textproc.FrozenVocab, error) {
	blob, err := a.BytesView(prefix + ".blob")
	if err != nil {
		return nil, err
	}
	offs, err := a.Uint32sView(prefix + ".offs")
	if err != nil {
		return nil, err
	}
	tab, err := a.Int32sView(prefix + ".tabl")
	if err != nil {
		return nil, err
	}
	v, err := textproc.NewFrozenVocab(blob, offs, tab)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return v, nil
}

// pairsFromArtifact validates and wraps the pair sections.
func pairsFromArtifact(a *snapshot.V2Artifact) (*frozenPairs, error) {
	p := &frozenPairs{}
	var err error
	if p.qv, err = readVocab(a, "q"); err != nil {
		return nil, err
	}
	if p.dv, err = readVocab(a, "d"); err != nil {
		return nil, err
	}
	if p.pairQ, err = a.Int32sView("p.q"); err != nil {
		return nil, err
	}
	if p.pairD, err = a.Int32sView("p.d"); err != nil {
		return nil, err
	}
	if p.tab, err = a.Int32sView("p.tabl"); err != nil {
		return nil, err
	}
	n := len(p.pairQ)
	if len(p.pairD) != n {
		return nil, fmt.Errorf("%w: %d pair queries but %d pair docs", snapshot.ErrCorrupt, n, len(p.pairD))
	}
	if len(p.tab) < minPairTable || bits.OnesCount(uint(len(p.tab))) != 1 || len(p.tab) < 2*n {
		return nil, fmt.Errorf("%w: pair probe table size %d cannot hold %d pairs", snapshot.ErrCorrupt, len(p.tab), n)
	}
	// Per-element invariants (in-range pair and bucket IDs) are NOT
	// scanned here — mapped loads must stay O(1) in artifact size; see
	// frozenPairs.validate for the deep pass verified loads run.
	p.mask = uint64(len(p.tab) - 1)
	return p, nil
}

// pairVals returns a dense value section and checks it covers every pair.
func pairVals(a *snapshot.V2Artifact, tag string, n int) ([]float64, error) {
	v, err := a.FloatsView(tag)
	if err != nil {
		return nil, err
	}
	if len(v) != n {
		return nil, fmt.Errorf("%w: section %q holds %d values for %d pairs", snapshot.ErrCorrupt, tag, len(v), n)
	}
	return v, nil
}

// --- PBM ---

// SaveV2 writes the fitted PBM as a zero-parse v2 artifact.
func (m *PBM) SaveV2(w io.Writer) error {
	m.defaults()
	p, vals := freezePairs([]map[qd]float64{m.Alpha}, []float64{m.PriorAlpha})
	var meta bytes.Buffer
	e := snapshot.NewRawEncoder(&meta)
	e.Float(m.PriorAlpha)
	if err := e.Flush(); err != nil {
		return err
	}
	vw := snapshot.NewV2Writer(m.Name())
	vw.Bytes("meta", meta.Bytes())
	vw.Floats("gamma", m.Gamma)
	writePairs(vw, p)
	vw.Floats("a.vals", vals[0])
	_, err := vw.WriteTo(w)
	return err
}

// MappedPBM is a PBM serving view over v2 artifact bytes: same scoring
// surface (Model, InplaceScorer, Examiner), zero-copy tables, no
// fitting. The artifact bytes must outlive the model.
type MappedPBM struct {
	gamma []float64
	pairs *frozenPairs
	alpha []float64
	prior float64
}

// PBMFromArtifact wraps a parsed v2 PBM artifact.
func PBMFromArtifact(a *snapshot.V2Artifact) (*MappedPBM, error) {
	if !strings.EqualFold(a.ModelName, "PBM") {
		return nil, fmt.Errorf("clickmodel: artifact holds a %q model, not PBM", a.ModelName)
	}
	meta, err := a.BytesView("meta")
	if err != nil {
		return nil, err
	}
	m := &MappedPBM{}
	d := snapshot.NewRawDecoder(bytes.NewReader(meta))
	m.prior = d.Float()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if m.gamma, err = a.FloatsView("gamma"); err != nil {
		return nil, err
	}
	if m.pairs, err = pairsFromArtifact(a); err != nil {
		return nil, err
	}
	if m.alpha, err = pairVals(a, "a.vals", m.pairs.NumPairs()); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model; a mapped PBM serves under the same name as
// its fitting twin.
func (m *MappedPBM) Name() string { return "PBM" }

// Fit implements Model by refusing: mapped models are immutable.
func (m *MappedPBM) Fit([]Session) error { return ErrMappedImmutable }

func (m *MappedPBM) alphaOf(q, d string) float64 {
	if id, ok := m.pairs.find(q, d); ok {
		return m.alpha[id]
	}
	return m.prior
}

// ClickProbs implements Model.
func (m *MappedPBM) ClickProbs(s Session) []float64 { return m.ClickProbsInto(s, nil) }

// ClickProbsInto implements InplaceScorer, mirroring PBM exactly.
func (m *MappedPBM) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	for i, d := range s.Docs {
		g := 0.0
		if i < len(m.gamma) {
			g = m.gamma[i]
		}
		out[i] = m.alphaOf(s.Query, d) * g
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *MappedPBM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	for i := range out {
		if i < len(m.gamma) {
			out[i] = m.gamma[i]
		}
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *MappedPBM) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	for i, d := range s.Docs {
		g := 0.0
		if i < len(m.gamma) {
			g = m.gamma[i]
		}
		ll += bernoulliLL(m.alphaOf(s.Query, d)*g, s.Clicks[i])
	}
	return ll
}

// NumParams feeds ParamCount's generic arm.
func (m *MappedPBM) NumParams() int { return len(m.gamma) + len(m.alpha) }

// Save implements Snapshotter by re-emitting the v2 sections, so a
// mapped model exports byte-compatible artifacts (replica sync reads
// the same format it serves).
func (m *MappedPBM) Save(w io.Writer) error {
	var meta bytes.Buffer
	e := snapshot.NewRawEncoder(&meta)
	e.Float(m.prior)
	if err := e.Flush(); err != nil {
		return err
	}
	vw := snapshot.NewV2Writer(m.Name())
	vw.Bytes("meta", meta.Bytes())
	vw.Floats("gamma", m.gamma)
	writePairs(vw, m.pairs)
	vw.Floats("a.vals", m.alpha)
	_, err := vw.WriteTo(w)
	return err
}

// Load implements Snapshotter by refusing: mapped models are immutable.
func (m *MappedPBM) Load(io.Reader) error { return ErrMappedImmutable }

// --- DBN ---

// SaveV2 writes the fitted DBN as a zero-parse v2 artifact.
func (m *DBN) SaveV2(w io.Writer) error {
	m.defaults()
	p, vals := freezePairs([]map[qd]float64{m.AttrA, m.SatS}, []float64{m.PriorA, m.PriorS})
	var meta bytes.Buffer
	e := snapshot.NewRawEncoder(&meta)
	e.Float(m.Gamma)
	e.Float(m.PriorA)
	e.Float(m.PriorS)
	if err := e.Flush(); err != nil {
		return err
	}
	vw := snapshot.NewV2Writer(m.Name())
	vw.Bytes("meta", meta.Bytes())
	writePairs(vw, p)
	vw.Floats("a.vals", vals[0])
	vw.Floats("s.vals", vals[1])
	_, err := vw.WriteTo(w)
	return err
}

// MappedDBN is a DBN serving view over v2 artifact bytes.
type MappedDBN struct {
	pairs          *frozenPairs
	attr, sat      []float64
	gamma          float64
	priorA, priorS float64
}

// ValidateTables runs the deep O(n) structural checks the mapped
// constructor defers; verified load paths call it before install.
func (m *MappedPBM) ValidateTables() error { return m.pairs.validate() }

// DBNFromArtifact wraps a parsed v2 DBN artifact.
func DBNFromArtifact(a *snapshot.V2Artifact) (*MappedDBN, error) {
	if !strings.EqualFold(a.ModelName, "DBN") {
		return nil, fmt.Errorf("clickmodel: artifact holds a %q model, not DBN", a.ModelName)
	}
	meta, err := a.BytesView("meta")
	if err != nil {
		return nil, err
	}
	m := &MappedDBN{}
	d := snapshot.NewRawDecoder(bytes.NewReader(meta))
	m.gamma = d.Float()
	m.priorA = d.Float()
	m.priorS = d.Float()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if m.pairs, err = pairsFromArtifact(a); err != nil {
		return nil, err
	}
	n := m.pairs.NumPairs()
	if m.attr, err = pairVals(a, "a.vals", n); err != nil {
		return nil, err
	}
	if m.sat, err = pairVals(a, "s.vals", n); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model.
func (m *MappedDBN) Name() string { return "DBN" }

// ValidateTables runs the deep O(n) structural checks the mapped
// constructor defers; verified load paths call it before install.
func (m *MappedDBN) ValidateTables() error { return m.pairs.validate() }

// Fit implements Model by refusing: mapped models are immutable.
func (m *MappedDBN) Fit([]Session) error { return ErrMappedImmutable }

func (m *MappedDBN) aOf(q, d string) float64 {
	if id, ok := m.pairs.find(q, d); ok {
		return m.attr[id]
	}
	return m.priorA
}

func (m *MappedDBN) sOf(q, d string) float64 {
	if id, ok := m.pairs.find(q, d); ok {
		return m.sat[id]
	}
	return m.priorS
}

// ClickProbs implements Model.
func (m *MappedDBN) ClickProbs(s Session) []float64 { return m.ClickProbsInto(s, nil) }

// ClickProbsInto implements InplaceScorer via the same forward
// examination recursion as DBN.ClickProbsInto, term for term.
func (m *MappedDBN) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		a := m.aOf(s.Query, d)
		sat := m.sOf(s.Query, d)
		out[i] = exam * a
		exam *= m.gamma * (a*(1-sat) + (1 - a))
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *MappedDBN) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		a := m.aOf(s.Query, d)
		sat := m.sOf(s.Query, d)
		exam *= m.gamma * (a*(1-sat) + (1 - a))
	}
	return out
}

// tailZ is the likelihood of the observed all-skip tail past the last
// click, marginalising the stop position and (when there is a click)
// the satisfaction outcome — the z of DBN.tailPosterior with the same
// accumulation order, so likelihoods agree bit for bit.
func (m *MappedDBN) tailZ(s Session, last int) float64 {
	n := len(s.Docs)
	g := m.gamma
	var wSat, sum float64
	if last >= 0 {
		sat := m.sOf(s.Query, s.Docs[last])
		wSat = sat
		cur := 1 - sat
		for t := last; t < n; t++ {
			if t > last {
				cur *= g * (1 - m.aOf(s.Query, s.Docs[t]))
			}
			w := cur
			if t < n-1 {
				w *= 1 - g
			}
			sum += w
		}
	} else {
		cur := 1.0
		for t := 0; t < n; t++ {
			if t > 0 {
				cur *= g
			}
			cur *= 1 - m.aOf(s.Query, s.Docs[t])
			w := cur
			if t < n-1 {
				w *= 1 - g
			}
			sum += w
		}
	}
	z := wSat + sum
	if z <= 0 {
		z = probEps
	}
	return z
}

// SessionLogLikelihood implements Model, mirroring DBN's exact
// likelihood: certainly-examined prefix plus marginalised tail.
func (m *MappedDBN) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		a := m.aOf(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(a)
			if j < last {
				ll += log((1 - m.sOf(s.Query, s.Docs[j])) * m.gamma)
			}
		} else {
			ll += log(1-a) + log(m.gamma)
		}
	}
	ll += log(m.tailZ(s, last))
	return ll
}

// NumParams feeds ParamCount's generic arm (mirrors DBN: pairs twice
// plus the continuation scalar).
func (m *MappedDBN) NumParams() int { return len(m.attr) + len(m.sat) + 1 }

// Save implements Snapshotter by re-emitting the v2 sections.
func (m *MappedDBN) Save(w io.Writer) error {
	var meta bytes.Buffer
	e := snapshot.NewRawEncoder(&meta)
	e.Float(m.gamma)
	e.Float(m.priorA)
	e.Float(m.priorS)
	if err := e.Flush(); err != nil {
		return err
	}
	vw := snapshot.NewV2Writer(m.Name())
	vw.Bytes("meta", meta.Bytes())
	writePairs(vw, m.pairs)
	vw.Floats("a.vals", m.attr)
	vw.Floats("s.vals", m.sat)
	_, err := vw.WriteTo(w)
	return err
}

// Load implements Snapshotter by refusing: mapped models are immutable.
func (m *MappedDBN) Load(io.Reader) error { return ErrMappedImmutable }

// --- dispatch ---

// SaveV2Model writes a v2 artifact for any model with zero-parse
// support (PBM, DBN, and their mapped forms); other models return an
// error naming the v1 fallback.
func SaveV2Model(w io.Writer, m Model) error {
	switch t := m.(type) {
	case *PBM:
		return t.SaveV2(w)
	case *DBN:
		return t.SaveV2(w)
	case *MappedPBM:
		return t.Save(w)
	case *MappedDBN:
		return t.Save(w)
	}
	return fmt.Errorf("clickmodel: model %q has no v2 (zero-parse) codec; use the v1 snapshot format", m.Name())
}

// MappedFromArtifact constructs the serving view for the model named in
// a parsed v2 artifact.
func MappedFromArtifact(a *snapshot.V2Artifact) (Model, error) {
	switch strings.ToUpper(a.ModelName) {
	case "PBM":
		return PBMFromArtifact(a)
	case "DBN":
		return DBNFromArtifact(a)
	}
	return nil, fmt.Errorf("clickmodel: artifact model %q has no v2 (zero-parse) support", a.ModelName)
}
