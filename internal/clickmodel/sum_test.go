package clickmodel

import (
	"math"
	"math/rand"
	"testing"
)

// simulateSUM generates sessions where doc utility controls session
// termination after clicks.
func simulateSUM(rng *rand.Rand, n int) []Session {
	truthU := func(d int) float64 { return 0.15 + 0.1*float64(d) } // docs 0..7
	out := make([]Session, 0, n)
	for k := 0; k < n; k++ {
		perm := rng.Perm(simDocs)
		docs := make([]string, 5)
		clicks := make([]bool, 5)
		satisfied := false
		for i := 0; i < 5; i++ {
			d := perm[i]
			docs[i] = docName(d)
			if satisfied {
				continue
			}
			if rng.Float64() < 0.35 { // attractive enough to click
				clicks[i] = true
				if rng.Float64() < truthU(d) {
					satisfied = true
				}
			}
		}
		out = append(out, Session{Query: "q", Docs: docs, Clicks: clicks})
	}
	return out
}

func TestSUMUtilityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sessions := simulateSUM(rng, 30000)
	m := NewSUM()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	// Utilities must be ordered like the planted values. Allow local
	// swaps between neighbours but demand global rank correlation.
	violations := 0
	comparisons := 0
	for a := 0; a < simDocs; a++ {
		for b := a + 2; b < simDocs; b++ { // skip direct neighbours
			comparisons++
			if m.u("q", docName(a)) >= m.u("q", docName(b)) {
				violations++
			}
		}
	}
	if violations > comparisons/4 {
		t.Errorf("utility ordering violated %d/%d times", violations, comparisons)
	}
}

func TestSUMSessionUtility(t *testing.T) {
	m := NewSUM()
	m.Utility = map[qd]float64{{"q", "a"}: 0.5, {"q", "b"}: 0.5}
	m.baseCTR = []float64{0.1, 0.1}
	s := Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, true}}
	// 1 - (1-0.5)(1-0.5) = 0.75.
	if got := m.SessionUtility(s); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("SessionUtility = %v, want 0.75", got)
	}
	empty := Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{false}}
	if got := m.SessionUtility(empty); got != 0 {
		t.Errorf("clickless session utility = %v, want 0", got)
	}
}

func TestSUMLogLikelihoodFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	sessions := simulateSUM(rng, 5000)
	m := NewSUM()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions[:200] {
		ll := m.SessionLogLikelihood(s)
		if math.IsNaN(ll) || ll > 0 {
			t.Fatalf("bad LL %v", ll)
		}
	}
	ev := Evaluate(m, sessions[:1000])
	if ev.Perplexity < 1 {
		t.Errorf("perplexity %v", ev.Perplexity)
	}
}

func TestSUMRejectsBadInput(t *testing.T) {
	m := NewSUM()
	if err := m.Fit(nil); err == nil {
		t.Error("empty log accepted")
	}
}
