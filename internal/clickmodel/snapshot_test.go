package clickmodel

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// snapSessions builds a multi-query log with varying result-list
// depths, so snapshots carry non-trivial vocabularies, triangular
// tables and position arrays.
func snapSessions(seed int64, n, maxDepth int) []Session {
	rng := rand.New(rand.NewSource(seed))
	queries := []string{"flights", "hotels", "insurance", "rental cars", "cruises"}
	out := make([]Session, n)
	for k := range out {
		depth := 2 + rng.Intn(maxDepth-1)
		s := Session{
			Query:  queries[rng.Intn(len(queries))],
			Docs:   make([]string, depth),
			Clicks: make([]bool, depth),
		}
		perm := rng.Perm(simDocs)
		for i := 0; i < depth; i++ {
			d := perm[i]
			s.Docs[i] = docName(d)
			s.Clicks[i] = rng.Float64() < truthAlpha(d)/(1.0+float64(i))
		}
		out[k] = s
	}
	return out
}

// fitFresh constructs, tunes and fits one registry model.
func fitFresh(t *testing.T, name string, sessions []Session) Model {
	t.Helper()
	m, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if it, ok := m.(IterativeModel); ok {
		it.SetIterations(5)
	}
	if err := m.Fit(sessions); err != nil {
		t.Fatalf("fit %s: %v", name, err)
	}
	return m
}

// TestSnapshotRoundTrip is the per-model property test: fit → Save →
// Load into a fresh instance → identical predictions (ClickProbs,
// SessionLogLikelihood, ExaminationProbs) within 1e-12 on held-out
// sessions, including sessions with unseen queries and documents so
// the round-tripped priors are exercised too.
func TestSnapshotRoundTrip(t *testing.T) {
	train := snapSessions(101, 800, 6)
	eval := snapSessions(202, 60, 6)
	// Unseen query and unseen docs hit every prior/fallback path.
	eval = append(eval,
		Session{Query: "novel query", Docs: []string{"zz", "yy", "xx"}, Clicks: []bool{true, false, false}},
		Session{Query: "flights", Docs: []string{"qq", "a", "rr"}, Clicks: []bool{false, true, false}},
	)

	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			fitted := fitFresh(t, name, train)

			var buf bytes.Buffer
			if err := fitted.(Snapshotter).Save(&buf); err != nil {
				t.Fatalf("save: %v", err)
			}
			fresh, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.(Snapshotter).Load(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("load: %v", err)
			}

			for i, s := range eval {
				want, got := fitted.ClickProbs(s), fresh.ClickProbs(s)
				if len(want) != len(got) {
					t.Fatalf("session %d: %d probs, want %d", i, len(got), len(want))
				}
				for j := range want {
					if math.Abs(want[j]-got[j]) > 1e-12 {
						t.Errorf("session %d pos %d: ClickProbs %v, want %v", i, j, got[j], want[j])
					}
				}
				wll, gll := fitted.SessionLogLikelihood(s), fresh.SessionLogLikelihood(s)
				if math.Abs(wll-gll) > 1e-12 {
					t.Errorf("session %d: LL %v, want %v", i, gll, wll)
				}
				if ex, ok := fitted.(Examiner); ok {
					we, ge := ex.ExaminationProbs(s), fresh.(Examiner).ExaminationProbs(s)
					for j := range we {
						if math.Abs(we[j]-ge[j]) > 1e-12 {
							t.Errorf("session %d pos %d: ExaminationProbs %v, want %v", i, j, ge[j], we[j])
						}
					}
				}
			}

			// A second Save must produce identical bytes: artifacts are
			// deterministic (sorted keys), so they diff and cache cleanly.
			var buf2 bytes.Buffer
			if err := fresh.(Snapshotter).Save(&buf2); err != nil {
				t.Fatalf("re-save: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Error("re-saved artifact differs from the original")
			}

			if ParamCount(fitted) <= 0 {
				t.Errorf("ParamCount(%s) = %d after fit", name, ParamCount(fitted))
			}
		})
	}
}

// TestSnapshotBBMSparse forces BBM's sparse skip-count fallback (deep
// result lists) through the codec.
func TestSnapshotBBMSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	depth := 50 // tri(50) > maxDenseBBMCells → sparse layout
	sessions := make([]Session, 40)
	for k := range sessions {
		s := Session{Query: "q", Docs: make([]string, depth), Clicks: make([]bool, depth)}
		for i := 0; i < depth; i++ {
			s.Docs[i] = docName(i % simDocs)
			s.Clicks[i] = rng.Float64() < 0.2/(1+float64(i))
		}
		sessions[k] = s
	}
	m := NewBBM()
	m.SetIterations(2)
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	if m.nonClickS == nil {
		t.Fatal("test did not reach the sparse layout")
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewBBM()
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions[:5] {
		want, got := m.ClickProbs(s), fresh.ClickProbs(s)
		for j := range want {
			if math.Abs(want[j]-got[j]) > 1e-12 {
				t.Fatalf("session %d pos %d: %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestLoadModelDispatch reads artifacts back through the registry
// without knowing the concrete type up front.
func TestLoadModelDispatch(t *testing.T) {
	sessions := snapSessions(303, 300, 5)
	for _, name := range []string{"pbm", "dbn", "sum"} {
		fitted := fitFresh(t, name, sessions)
		var buf bytes.Buffer
		if err := fitted.(Snapshotter).Save(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.EqualFold(m.Name(), name) {
			t.Errorf("LoadModel gave %q, want %q", m.Name(), name)
		}
		want, got := fitted.ClickProbs(sessions[0]), m.ClickProbs(sessions[0])
		for j := range want {
			if math.Abs(want[j]-got[j]) > 1e-12 {
				t.Errorf("%s pos %d: %v, want %v", name, j, got[j], want[j])
			}
		}
	}
}

func TestSnapshotWrongModel(t *testing.T) {
	sessions := snapSessions(404, 200, 4)
	pbm := fitFresh(t, "pbm", sessions)
	var buf bytes.Buffer
	if err := pbm.(Snapshotter).Save(&buf); err != nil {
		t.Fatal(err)
	}
	err := NewUBM().Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "PBM") {
		t.Fatalf("UBM loaded a PBM artifact: %v", err)
	}
}

// TestSnapshotRejectsDamage truncates and corrupts a real artifact at
// every byte: no damaged artifact may load cleanly.
func TestSnapshotRejectsDamage(t *testing.T) {
	sessions := snapSessions(505, 120, 4)
	pbm := fitFresh(t, "pbm", sessions)
	var buf bytes.Buffer
	if err := pbm.(Snapshotter).Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 0; cut < len(raw); cut++ {
		if err := NewPBM().Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d loaded cleanly", cut, len(raw))
		}
	}
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x5A
		if err := NewPBM().Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte %d/%d loaded cleanly", i, len(raw))
		}
		if _, err := LoadModel(bytes.NewReader(bad)); err == nil {
			t.Fatalf("LoadModel accepted artifact with flipped byte %d", i)
		}
	}
}

// TestSnapshotHugeCountFailsFast: a corrupt count prefix near the
// codec's length bound must fail on the first missing element instead
// of pre-allocating gigabytes or spinning through millions of no-op
// reads.
func TestSnapshotHugeCountFailsFast(t *testing.T) {
	var buf bytes.Buffer
	e := snapshot.NewEncoder(&buf, "PBM")
	e.Floats(nil)   // Gamma
	e.Uint(1 << 27) // query count: plausible to Int(), far past the data
	e.String("q")   // one query, then nothing
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- NewPBM().Load(bytes.NewReader(buf.Bytes())) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("huge-count artifact loaded cleanly")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("decoder spun on a corrupt count instead of failing fast")
	}
}

// TestSnapshotRefusesBadTriangle: a hand-mangled UBM gamma table must
// fail Save rather than emit an artifact only the decoder rejects.
func TestSnapshotRefusesBadTriangle(t *testing.T) {
	sessions := snapSessions(707, 100, 4)
	m := fitFresh(t, "ubm", sessions).(*UBM)
	m.Gamma[1] = m.Gamma[1][:1] // row 1 should have 2 cells
	if err := m.Save(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "triangular") {
		t.Fatalf("non-triangular gamma saved cleanly: %v", err)
	}
}

func TestSnapshotCorruptIsErrCorrupt(t *testing.T) {
	sessions := snapSessions(606, 100, 4)
	pbm := fitFresh(t, "pbm", sessions)
	var buf bytes.Buffer
	if err := pbm.(Snapshotter).Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // damage the checksum itself
	if err := NewPBM().Load(bytes.NewReader(raw)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("checksum damage not ErrCorrupt: %v", err)
	}
}
