package clickmodel

// Snapshot codecs: every built-in model serializes its fitted
// parameters to the self-describing binary artifact format of
// internal/snapshot (magic + version + model name header, dense
// parameter arrays, CRC trailer) and restores to a ready model. This
// is the train-offline half of the serving split — fit on a log,
// Save, ship the artifact, and a serving process Loads it without
// re-estimating anything (see internal/engine.LoadSnapshot and
// cmd/microserve).
//
// Per-pair parameter maps are encoded as a query vocabulary plus
// (query ID, doc) pair table plus one dense value array, mirroring the
// compiled-log layout, so an artifact costs one string per distinct
// query rather than one per impression pair.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/snapshot"
)

// Snapshotter is the persistence half of the model contract: a model
// whose fitted parameters round-trip through a binary artifact. Save
// writes a complete self-describing artifact (header + parameters +
// checksum); Load restores the receiver from one, failing on foreign
// model names, corrupt bytes, or artifacts from a different format
// version. Every built-in model implements it.
type Snapshotter interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// snapshotCodec is the internal payload half of Snapshotter: encode or
// decode just the parameter payload against an already-open artifact.
// LoadModel dispatches on the artifact header and needs a way to
// decode into a freshly constructed registry model without re-reading
// the header.
type snapshotCodec interface {
	Model
	encodeSnapshot(e *snapshot.Encoder)
	decodeSnapshot(d *snapshot.Decoder)
}

// saveSnapshot writes a complete artifact for one model.
func saveSnapshot(w io.Writer, m snapshotCodec) error {
	e := snapshot.NewEncoder(w, m.Name())
	m.encodeSnapshot(e)
	return e.Close()
}

// loadSnapshot restores m from a complete artifact, requiring the
// recorded model name to match the receiver.
func loadSnapshot(r io.Reader, m snapshotCodec) error {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return err
	}
	if !strings.EqualFold(d.ModelName(), m.Name()) {
		return fmt.Errorf("clickmodel: artifact holds a %q model, not %q", d.ModelName(), m.Name())
	}
	m.decodeSnapshot(d)
	return d.Close()
}

// LoadModel reads any click-model artifact from r, constructing the
// model named in the header through the registry. Custom registered
// models must be built-in codec implementations to be loadable.
func LoadModel(r io.Reader) (Model, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	m, err := Decode(d)
	if err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return m, nil
}

// Decode constructs the model named in an already-open artifact and
// decodes its payload. The caller owns the decoder and must Close it
// (verifying the checksum) before trusting the result; LoadModel does
// both.
func Decode(d *snapshot.Decoder) (Model, error) {
	m, err := New(d.ModelName())
	if err != nil {
		return nil, err
	}
	sc, ok := m.(snapshotCodec)
	if !ok {
		return nil, fmt.Errorf("clickmodel: model %q does not support snapshot decoding", d.ModelName())
	}
	sc.decodeSnapshot(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// --- per-pair parameter maps ---

// encodePairParams writes a map[qd]float64 as query vocab + pair table
// + dense value array, in sorted (query, doc) order so identical
// parameters produce identical artifacts.
func encodePairParams(e *snapshot.Encoder, m map[qd]float64) {
	keys := make([]qd, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].q != keys[j].q {
			return keys[i].q < keys[j].q
		}
		return keys[i].d < keys[j].d
	})

	// Query vocabulary in first-appearance (sorted) order.
	qids := make(map[string]int, len(keys))
	queries := make([]string, 0, len(keys))
	for _, k := range keys {
		if _, ok := qids[k.q]; !ok {
			qids[k.q] = len(queries)
			queries = append(queries, k.q)
		}
	}
	e.Int(len(queries))
	for _, q := range queries {
		e.String(q)
	}
	e.Int(len(keys))
	for _, k := range keys {
		e.Uint(uint64(qids[k.q]))
		e.String(k.d)
	}
	for _, k := range keys {
		e.Float(m[k])
	}
}

// decodePairParams reads the encodePairParams layout back into a map.
// Count-prefixed storage grows incrementally (with early-out on read
// errors), so a corrupt count cannot pre-allocate gigabytes or spin
// through millions of no-op reads before the damage is detected.
func decodePairParams(d *snapshot.Decoder) map[qd]float64 {
	nq := d.Int()
	queries := make([]string, 0, min(nq, 4096))
	for i := 0; i < nq; i++ {
		queries = append(queries, d.String())
		if d.Err() != nil {
			return nil
		}
	}
	n := d.Int()
	keys := make([]qd, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		qi := d.Uint()
		doc := d.String()
		if d.Err() != nil {
			return nil
		}
		if qi >= uint64(nq) {
			d.Failf("pair %d references query %d of %d", i, qi, nq)
			return nil
		}
		keys = append(keys, qd{queries[qi], doc})
	}
	out := make(map[qd]float64, min(n, 4096))
	for i := range keys {
		out[keys[i]] = d.Float()
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// --- PBM ---

// Save implements Snapshotter.
func (m *PBM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *PBM) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *PBM) encodeSnapshot(e *snapshot.Encoder) {
	e.Floats(m.Gamma)
	encodePairParams(e, m.Alpha)
	e.Float(m.PriorAlpha)
	e.Int(m.Iterations)
}

func (m *PBM) decodeSnapshot(d *snapshot.Decoder) {
	m.Gamma = d.Floats()
	m.Alpha = decodePairParams(d)
	m.PriorAlpha = d.Float()
	m.Iterations = d.Int()
}

// --- Cascade ---

// Save implements Snapshotter.
func (m *Cascade) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *Cascade) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *Cascade) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.Alpha)
	e.Float(m.PriorAlpha)
	e.Float(m.LaplaceA)
	e.Float(m.LaplaceB)
}

func (m *Cascade) decodeSnapshot(d *snapshot.Decoder) {
	m.Alpha = decodePairParams(d)
	m.PriorAlpha = d.Float()
	m.LaplaceA = d.Float()
	m.LaplaceB = d.Float()
}

// --- DCM ---

// Save implements Snapshotter.
func (m *DCM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *DCM) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *DCM) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.Alpha)
	e.Floats(m.Lambda)
	e.Float(m.PriorAlpha)
	e.Float(m.LaplaceA)
	e.Float(m.LaplaceB)
}

func (m *DCM) decodeSnapshot(d *snapshot.Decoder) {
	m.Alpha = decodePairParams(d)
	m.Lambda = d.Floats()
	m.PriorAlpha = d.Float()
	m.LaplaceA = d.Float()
	m.LaplaceB = d.Float()
}

// --- UBM ---

// Save implements Snapshotter.
func (m *UBM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *UBM) Load(r io.Reader) error { return loadSnapshot(r, m) }

// encodeTriangular flattens a triangular table (row i has i+1 cells)
// into one dense array. Non-triangular shapes (hand-edited tables)
// fail the encode, so Save errors instead of emitting an artifact the
// decoder would reject later.
func encodeTriangular(e *snapshot.Encoder, rows [][]float64) {
	e.Int(len(rows))
	flat := make([]float64, 0, tri(len(rows)))
	for i, row := range rows {
		if len(row) != i+1 {
			e.Failf("triangular row %d has %d cells, want %d", i, len(row), i+1)
			return
		}
		flat = append(flat, row...)
	}
	e.Floats(flat)
}

// decodeTriangular restores the encodeTriangular layout, re-slicing
// rows over one backing array as the fits do.
func decodeTriangular(d *snapshot.Decoder) [][]float64 {
	n := d.Int()
	flat := d.Floats()
	if d.Err() != nil {
		return nil
	}
	if len(flat) != tri(n) {
		if len(flat) == 0 && n == 0 {
			return nil
		}
		d.Failf("triangular table claims %d rows but holds %d cells", n, len(flat))
		return nil
	}
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = flat[tri(i) : tri(i)+i+1 : tri(i)+i+1]
	}
	return rows
}

func (m *UBM) encodeSnapshot(e *snapshot.Encoder) {
	encodeTriangular(e, m.Gamma)
	encodePairParams(e, m.Alpha)
	e.Float(m.PriorAlpha)
	e.Int(m.Iterations)
}

func (m *UBM) decodeSnapshot(d *snapshot.Decoder) {
	m.Gamma = decodeTriangular(d)
	m.Alpha = decodePairParams(d)
	m.PriorAlpha = d.Float()
	m.Iterations = d.Int()
}

// --- BBM ---

// Save implements Snapshotter. A BBM artifact carries the fitted UBM
// browsing layer plus the compact relevance sufficient statistics
// (click counts and per-gamma-cell skip counts), so posterior means
// are recomputable on load without the original log.
func (m *BBM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *BBM) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *BBM) encodeSnapshot(e *snapshot.Encoder) {
	e.Int(m.GridSize)
	browse := m.Browse
	if browse == nil {
		browse = NewUBM()
	}
	browse.encodeSnapshot(e)

	// Interned queries, then pairs as (query ID, doc) in pair-ID order.
	nq := 0
	if m.queries != nil {
		nq = m.queries.Len()
	}
	e.Int(nq)
	for i := 0; i < nq; i++ {
		e.String(m.queries.String(int32(i)))
	}
	inv := make([]pairKey, len(m.pairIDs))
	for k, id := range m.pairIDs {
		inv[id] = k
	}
	e.Int(len(inv))
	for _, k := range inv {
		e.Uint(uint64(k.q))
		e.String(k.d)
	}

	e.Floats(m.clicks)
	e.Floats(m.cellGamma)
	e.Bool(m.nonClick != nil)
	if m.nonClick != nil {
		e.Int(m.nCell)
		e.Floats(m.nonClick)
	} else {
		e.Int(len(m.nonClickS))
		for _, inner := range m.nonClickS {
			// Cells sorted for deterministic artifacts.
			cells := make([]int32, 0, len(inner))
			for c := range inner {
				cells = append(cells, c)
			}
			sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
			e.Int(len(cells))
			for _, c := range cells {
				e.Uint(uint64(c))
				e.Float(inner[c])
			}
		}
	}
}

func (m *BBM) decodeSnapshot(d *snapshot.Decoder) {
	m.GridSize = d.Int()
	m.Browse = NewUBM()
	m.Browse.decodeSnapshot(d)

	nq := d.Int()
	m.queries = NewVocab()
	for i := 0; i < nq; i++ {
		m.queries.ID(d.String()) // IDs are assigned in encode order
		if d.Err() != nil {
			return
		}
	}
	nPair := d.Int()
	if d.Err() != nil {
		return
	}
	m.pairIDs = make(map[pairKey]int32, min(nPair, 4096))
	for i := 0; i < nPair; i++ {
		qid := d.Uint()
		doc := d.String()
		if d.Err() != nil {
			return
		}
		if qid >= uint64(nq) {
			d.Failf("BBM pair %d references query %d of %d", i, qid, nq)
			return
		}
		m.pairIDs[pairKey{int32(qid), doc}] = int32(i)
	}

	m.clicks = d.Floats()
	m.cellGamma = d.Floats()
	if d.Bool() {
		m.nCell = d.Int()
		m.nonClick = d.Floats()
		m.nonClickS = nil
		if d.Err() == nil && m.nCell > 0 && len(m.nonClick) != nPair*m.nCell {
			d.Failf("BBM skip matrix holds %d cells, want %d×%d", len(m.nonClick), nPair, m.nCell)
		}
	} else {
		n := d.Int()
		if d.Err() != nil {
			return
		}
		if n != nPair {
			d.Failf("BBM sparse skip counts cover %d pairs, want %d", n, nPair)
			return
		}
		m.nCell = 0
		m.nonClick = nil
		// n was verified against nPair, whose entries were each read off
		// the artifact above, so this length is trusted.
		m.nonClickS = make([]map[int32]float64, n)
		for p := 0; p < n; p++ {
			k := d.Int()
			if d.Err() != nil {
				return
			}
			if k == 0 {
				continue
			}
			inner := make(map[int32]float64, min(k, 4096))
			for j := 0; j < k; j++ {
				cell := d.Uint()
				inner[int32(cell)] = d.Float()
				if d.Err() != nil {
					return
				}
			}
			m.nonClickS[p] = inner
		}
	}
}

// --- CCM ---

// Save implements Snapshotter.
func (m *CCM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *CCM) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *CCM) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.Rel)
	e.Float(m.Alpha1)
	e.Float(m.Alpha2)
	e.Float(m.Alpha3)
	e.Float(m.PriorR)
	e.Int(m.Iterations)
}

func (m *CCM) decodeSnapshot(d *snapshot.Decoder) {
	m.Rel = decodePairParams(d)
	m.Alpha1 = d.Float()
	m.Alpha2 = d.Float()
	m.Alpha3 = d.Float()
	m.PriorR = d.Float()
	m.Iterations = d.Int()
}

// --- DBN ---

// Save implements Snapshotter.
func (m *DBN) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *DBN) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *DBN) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.AttrA)
	encodePairParams(e, m.SatS)
	e.Float(m.Gamma)
	e.Float(m.PriorA)
	e.Float(m.PriorS)
	e.Int(m.Iterations)
}

func (m *DBN) decodeSnapshot(d *snapshot.Decoder) {
	m.AttrA = decodePairParams(d)
	m.SatS = decodePairParams(d)
	m.Gamma = d.Float()
	m.PriorA = d.Float()
	m.PriorS = d.Float()
	m.Iterations = d.Int()
}

// --- SDBN ---

// Save implements Snapshotter.
func (m *SDBN) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *SDBN) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *SDBN) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.AttrA)
	encodePairParams(e, m.SatS)
	e.Float(m.PriorA)
	e.Float(m.PriorS)
	e.Float(m.LaplaceA)
	e.Float(m.LaplaceB)
}

func (m *SDBN) decodeSnapshot(d *snapshot.Decoder) {
	m.AttrA = decodePairParams(d)
	m.SatS = decodePairParams(d)
	m.PriorA = d.Float()
	m.PriorS = d.Float()
	m.LaplaceA = d.Float()
	m.LaplaceB = d.Float()
}

// --- GCM ---

// Save implements Snapshotter.
func (m *GCM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *GCM) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *GCM) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.Rel)
	e.Floats(m.LambdaSkip)
	e.Floats(m.LambdaClick)
	e.Float(m.PriorR)
	e.Int(m.Iterations)
}

func (m *GCM) decodeSnapshot(d *snapshot.Decoder) {
	m.Rel = decodePairParams(d)
	m.LambdaSkip = d.Floats()
	m.LambdaClick = d.Floats()
	m.PriorR = d.Float()
	m.Iterations = d.Int()
}

// --- SUM ---

// Save implements Snapshotter.
func (m *SUM) Save(w io.Writer) error { return saveSnapshot(w, m) }

// Load implements Snapshotter.
func (m *SUM) Load(r io.Reader) error { return loadSnapshot(r, m) }

func (m *SUM) encodeSnapshot(e *snapshot.Encoder) {
	encodePairParams(e, m.Utility)
	e.Floats(m.baseCTR)
	e.Float(m.PriorU)
	e.Int(m.Iterations)
}

func (m *SUM) decodeSnapshot(d *snapshot.Decoder) {
	m.Utility = decodePairParams(d)
	m.baseCTR = d.Floats()
	m.PriorU = d.Float()
	m.Iterations = d.Int()
}

// Compile-time checks: every registry model round-trips.
var (
	_ Snapshotter = (*PBM)(nil)
	_ Snapshotter = (*Cascade)(nil)
	_ Snapshotter = (*DCM)(nil)
	_ Snapshotter = (*UBM)(nil)
	_ Snapshotter = (*BBM)(nil)
	_ Snapshotter = (*CCM)(nil)
	_ Snapshotter = (*DBN)(nil)
	_ Snapshotter = (*SDBN)(nil)
	_ Snapshotter = (*GCM)(nil)
	_ Snapshotter = (*SUM)(nil)
)

// ParamCount reports the number of fitted parameters a model holds —
// the engine's Models() metadata. Models outside the built-in set may
// implement interface{ NumParams() int }; others report 0.
func ParamCount(m Model) int {
	switch t := m.(type) {
	case *PBM:
		return len(t.Gamma) + len(t.Alpha)
	case *Cascade:
		return len(t.Alpha)
	case *DCM:
		return len(t.Alpha) + len(t.Lambda)
	case *UBM:
		return len(t.Alpha) + tri(len(t.Gamma))
	case *BBM:
		n := len(t.clicks) + len(t.cellGamma)
		if t.Browse != nil {
			n += len(t.Browse.Alpha) + tri(len(t.Browse.Gamma))
		}
		return n
	case *CCM:
		return len(t.Rel) + 3
	case *DBN:
		return len(t.AttrA) + len(t.SatS) + 1
	case *SDBN:
		return len(t.AttrA) + len(t.SatS)
	case *GCM:
		return len(t.Rel) + len(t.LambdaSkip) + len(t.LambdaClick)
	case *SUM:
		return len(t.Utility) + len(t.baseCTR)
	case interface{ NumParams() int }:
		return t.NumParams()
	}
	return 0
}
