package clickmodel

import (
	"errors"
	"math"
	"runtime"
	"sync"
)

// Vocab interns strings to dense int32 IDs (fslm-style): the first
// distinct string becomes ID 0, the next ID 1, and so on. Interning the
// session log once lets every EM pass index flat parameter arrays
// instead of re-hashing (query, doc) string pairs on each iteration.
//
// A Vocab is not safe for concurrent mutation; Compile builds it once
// and the fitted read paths only call the read-only accessors.
type Vocab struct {
	ids  map[string]int32
	strs []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{ids: make(map[string]int32)} }

// ID interns s, returning its dense ID (allocating the next one for a
// string never seen before).
func (v *Vocab) ID(s string) int32 {
	if id, ok := v.ids[s]; ok {
		return id
	}
	id := int32(len(v.strs))
	v.ids[s] = id
	v.strs = append(v.strs, s)
	return id
}

// Lookup returns the ID of s without interning, and whether it is known.
func (v *Vocab) Lookup(s string) (int32, bool) {
	id, ok := v.ids[s]
	return id, ok
}

// String returns the string behind an ID. IDs come from ID/Lookup, so
// out-of-range values are programmer errors and panic via the slice.
func (v *Vocab) String(id int32) string { return v.strs[id] }

// Len returns the number of interned strings.
func (v *Vocab) Len() int { return len(v.strs) }

// CompiledLog is a session log compiled for dense estimation: queries
// and (query, doc) pairs are interned to dense IDs, the per-session
// documents and clicks live in flat backing slices (CSR layout), and
// the derived state every model re-derives per EM iteration — last and
// first click, UBM's previous-click column, per-position and per-pair
// impression counts — is precomputed once.
//
// Compile once, then fit any number of models on the same log via
// their FitLog methods; Fit(sessions) compiles internally for callers
// that do not reuse the log. A CompiledLog is immutable after Compile
// and safe for concurrent use.
type CompiledLog struct {
	// Queries interns the query strings; pair interning and PairID
	// lookups key on the dense query ID, so each impression hashes one
	// string instead of two.
	Queries *Vocab

	off   []int32 // CSR offsets: session s spans impressions off[s]..off[s+1]
	last  []int32 // per session: 0-based last-click index, -1 for none
	first []int32 // per session: 0-based first-click index, -1 for none

	pair  []int32 // per impression: dense (query, doc) pair ID
	click []bool  // per impression: observed click
	prev  []int32 // per impression: UBM gamma column (0 = no prior click)

	pairs   []qd              // pair ID -> (query, doc)
	pairIDs map[pairKey]int32 // (query ID, doc) -> pair ID

	// sessions references the source log (no copy), so callers holding
	// only the compiled form can still reach models that need raw
	// sessions (e.g. SUM's clicked-sequence fit).
	sessions []Session

	posCount  []float64 // impressions observed at each position
	pairCount []float64 // impressions observed for each pair

	maxPos int

	// ubmCells caches the per-(position, previous-click) impression
	// counts in triangular layout; only UBM-family fits need them.
	ubmOnce  sync.Once
	ubmCells []float64
}

// Compile validates and interns a session log. The log must be
// non-empty and every session well-formed (the same contract Fit has
// always enforced).
func Compile(sessions []Session) (*CompiledLog, error) {
	if err := validateAll(sessions); err != nil {
		return nil, err
	}
	nImp, maxPos := 0, 0
	for i := range sessions {
		nImp += len(sessions[i].Docs)
		if len(sessions[i].Docs) > maxPos {
			maxPos = len(sessions[i].Docs)
		}
	}
	if nImp > math.MaxInt32 {
		return nil, errors.New("clickmodel: session log exceeds 2^31 impressions; shard it")
	}

	nSess := len(sessions)
	c := &CompiledLog{
		Queries:  NewVocab(),
		sessions: sessions,
		off:      make([]int32, nSess+1),
		last:     make([]int32, nSess),
		first:    make([]int32, nSess),
		pair:     make([]int32, nImp),
		click:    make([]bool, nImp),
		prev:     make([]int32, nImp),
		pairIDs:  make(map[pairKey]int32),
		posCount: make([]float64, maxPos),
		maxPos:   maxPos,
	}

	at := int32(0)
	for si := range sessions {
		s := &sessions[si]
		c.off[si] = at
		qid := c.Queries.ID(s.Query)
		c.last[si] = int32(s.LastClick())
		c.first[si] = int32(s.FirstClick())
		prevClick := int32(0)
		for i, d := range s.Docs {
			k := pairKey{qid, d}
			p, ok := c.pairIDs[k]
			if !ok {
				p = int32(len(c.pairs))
				c.pairIDs[k] = p
				c.pairs = append(c.pairs, qd{s.Query, d})
			}
			c.pair[at] = p
			c.click[at] = s.Clicks[i]
			c.prev[at] = prevClick
			if s.Clicks[i] {
				prevClick = int32(i + 1)
			}
			c.posCount[i]++
			at++
		}
	}
	c.off[nSess] = at

	c.pairCount = make([]float64, len(c.pairs))
	for _, p := range c.pair {
		c.pairCount[p]++
	}
	return c, nil
}

// NumSessions returns the number of compiled sessions.
func (c *CompiledLog) NumSessions() int { return len(c.last) }

// Sessions returns the source log the CompiledLog was built from (a
// reference, not a copy) — for callers that hold only the compiled
// form but need the raw sessions, e.g. fitting a model without a
// FitLog path. Treat it as read-only.
func (c *CompiledLog) Sessions() []Session { return c.sessions }

// NumImpressions returns the total number of (session, position) cells.
func (c *CompiledLog) NumImpressions() int { return len(c.pair) }

// NumPairs returns the number of distinct (query, doc) pairs.
func (c *CompiledLog) NumPairs() int { return len(c.pairs) }

// MaxPositions returns the longest result list in the log.
func (c *CompiledLog) MaxPositions() int { return c.maxPos }

// Pair returns the (query, doc) strings behind a dense pair ID.
func (c *CompiledLog) Pair(id int32) (query, doc string) {
	k := c.pairs[id]
	return k.q, k.d
}

// PairID returns the dense ID of a (query, doc) pair, and whether the
// pair occurs in the log.
func (c *CompiledLog) PairID(query, doc string) (int32, bool) {
	qid, ok := c.Queries.Lookup(query)
	if !ok {
		return 0, false
	}
	id, ok := c.pairIDs[pairKey{qid, doc}]
	return id, ok
}

// pairKey identifies a (query, doc) pair by the query's interned ID,
// so interning and lookups hash one string, not two.
type pairKey struct {
	q int32
	d string
}

// tri is the row offset of position i in triangular (i, j<=i) layout.
func tri(i int) int { return i * (i + 1) / 2 }

// ubmCellCounts lazily computes the per-(position, previous-click
// column) impression counts used as UBM/BBM gamma denominators; they
// are a property of the log, constant across EM iterations.
func (c *CompiledLog) ubmCellCounts() []float64 {
	c.ubmOnce.Do(func() {
		cells := make([]float64, tri(c.maxPos))
		for s := 0; s < c.NumSessions(); s++ {
			b, e := c.off[s], c.off[s+1]
			for i := b; i < e; i++ {
				pos := int(i - b)
				cells[tri(pos)+int(c.prev[i])]++
			}
		}
		c.ubmCells = cells
	})
	return c.ubmCells
}

// reuseMap clears and returns dst when a previous fit left one behind
// (refits then allocate nothing), or allocates a fresh pre-sized map.
func reuseMap(dst map[qd]float64, hint int) map[qd]float64 {
	if dst == nil {
		return make(map[qd]float64, hint)
	}
	clear(dst)
	return dst
}

// materializeInto builds the exported map form of a dense per-pair
// parameter vector, covering every pair of the log and reusing dst's
// storage when possible.
func (c *CompiledLog) materializeInto(dst map[qd]float64, vals []float64) map[qd]float64 {
	dst = reuseMap(dst, len(vals))
	for p, k := range c.pairs {
		dst[k] = vals[p]
	}
	return dst
}

// LogFitter is implemented by models that can fit directly from a
// CompiledLog, skipping the per-call interning Fit(sessions) performs.
// Compile once and call FitLog on each model when fitting several
// models (or refitting) over the same log. Refitting reuses the
// model's exported parameter storage (maps and slices) in place, so a
// steady-state refit allocates nothing; treat a model as read-only for
// other goroutines while a refit is in flight.
type LogFitter interface {
	FitLog(c *CompiledLog) error
}

// reuseFloats returns dst resliced when a previous fit left storage of
// the right capacity, or a fresh slice of length n. Contents are
// unspecified; callers re-initialise.
func reuseFloats(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}

// errNilLog guards the exported FitLog entry points.
var errNilLog = errors.New("clickmodel: FitLog on a nil compiled log")

// --- parallel E-step scaffolding ---

// minSessionsPerWorker keeps the auto-sized shard fan-out from
// swamping tiny logs with goroutine overhead.
const minSessionsPerWorker = 256

// emWorkers resolves a model's Workers knob against the log size:
// explicit values are honoured (the race tests force >1 on any
// machine), 0 auto-sizes to GOMAXPROCS capped by log size.
func emWorkers(requested, nSessions int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if byLoad := nSessions / minSessionsPerWorker; byLoad < w {
			w = byLoad
		}
	}
	if w < 1 {
		w = 1
	}
	if w > nSessions && nSessions > 0 {
		w = nSessions
	}
	return w
}

// forEachShard splits the sessions [0, n) into `workers` contiguous
// shards and runs fn once per shard, concurrently when workers > 1.
// Each worker accumulates into its own slice set (disjoint regions of
// the fit scratch slab); the caller merges them in worker order, so a
// fit is deterministic for a fixed worker count.
func forEachShard(workers, n int, fn func(worker, lo, hi int)) {
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// mergeShards folds the per-worker accumulator regions of a strided
// slab into worker 0's region, in worker order (deterministic for a
// fixed worker count), and returns that base region.
func mergeShards(all []float64, stride, workers int) []float64 {
	base := all[:stride]
	for w := 1; w < workers; w++ {
		shard := all[w*stride : (w+1)*stride]
		for i, v := range shard {
			base[i] += v
		}
	}
	return base
}

// fitScratch is the pooled scratch slab for dense fits. Refitting
// models on live traffic is the hot loop this package serves, so the
// (often hundreds of KB) accumulator arrays are recycled rather than
// reallocated per Fit.
type fitScratch struct{ buf []float64 }

var scratchPool = sync.Pool{New: func() any { return new(fitScratch) }}

// getScratch returns a zeroed float64 slab of length n and the pool
// token to hand back via putScratch when the fit completes.
func getScratch(n int) (*fitScratch, []float64) {
	fs := scratchPool.Get().(*fitScratch)
	if cap(fs.buf) < n {
		fs.buf = make([]float64, n)
	}
	buf := fs.buf[:n]
	clear(buf)
	return fs, buf
}

func putScratch(fs *fitScratch) { scratchPool.Put(fs) }

// slab carves named sub-slices out of one backing allocation.
type slab struct{ buf []float64 }

func (s *slab) take(n int) []float64 {
	out := s.buf[:n:n]
	s.buf = s.buf[n:]
	return out
}
