package clickmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestSessionValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       Session
		wantErr bool
	}{
		{"ok", Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{true}}, false},
		{"empty", Session{Query: "q"}, true},
		{"mismatch", Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.s.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSessionClickHelpers(t *testing.T) {
	s := Session{
		Docs:   []string{"a", "b", "c", "d"},
		Clicks: []bool{false, true, false, true},
	}
	if got := s.FirstClick(); got != 1 {
		t.Errorf("FirstClick = %d, want 1", got)
	}
	if got := s.LastClick(); got != 3 {
		t.Errorf("LastClick = %d, want 3", got)
	}
	if got := s.ClickCount(); got != 2 {
		t.Errorf("ClickCount = %d, want 2", got)
	}
	empty := Session{Docs: []string{"a"}, Clicks: []bool{false}}
	if empty.FirstClick() != -1 || empty.LastClick() != -1 || empty.ClickCount() != 0 {
		t.Error("click helpers wrong on clickless session")
	}
}

func TestPrevClickIndex(t *testing.T) {
	s := Session{
		Docs:   []string{"a", "b", "c", "d"},
		Clicks: []bool{false, true, false, true},
	}
	got := prevClickIndex(s)
	want := []int{0, 0, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prevClickIndex = %v, want %v", got, want)
		}
	}
}

// --- simulators for recovery tests ---

const simDocs = 8

func docName(i int) string { return string(rune('a' + i)) }

// truthAlpha is the planted attractiveness of doc i (same for all queries).
func truthAlpha(i int) float64 { return 0.1 + 0.08*float64(i) }

func simulatePBM(rng *rand.Rand, n int, gamma []float64) []Session {
	out := make([]Session, n)
	for k := range out {
		docs := make([]string, len(gamma))
		clicks := make([]bool, len(gamma))
		perm := rng.Perm(simDocs)
		for i := range gamma {
			d := perm[i]
			docs[i] = docName(d)
			clicks[i] = rng.Float64() < gamma[i] && rng.Float64() < truthAlpha(d)
		}
		out[k] = Session{Query: "q", Docs: docs, Clicks: clicks}
	}
	return out
}

func simulateCascade(rng *rand.Rand, n, depth int) []Session {
	out := make([]Session, n)
	for k := range out {
		docs := make([]string, depth)
		clicks := make([]bool, depth)
		perm := rng.Perm(simDocs)
		for i := 0; i < depth; i++ {
			d := perm[i]
			docs[i] = docName(d)
			if rng.Float64() < truthAlpha(d) {
				clicks[i] = true
				break
			}
		}
		out[k] = Session{Query: "q", Docs: docs, Clicks: clicks}
	}
	return out
}

func simulateDBN(rng *rand.Rand, n, depth int, sat, gamma float64) []Session {
	out := make([]Session, n)
	for k := range out {
		docs := make([]string, depth)
		clicks := make([]bool, depth)
		perm := rng.Perm(simDocs)
		examining := true
		for i := 0; i < depth; i++ {
			d := perm[i]
			docs[i] = docName(d)
			if !examining {
				continue
			}
			if rng.Float64() < truthAlpha(d) {
				clicks[i] = true
				if rng.Float64() < sat {
					examining = false
					continue
				}
			}
			if rng.Float64() >= gamma {
				examining = false
			}
		}
		out[k] = Session{Query: "q", Docs: docs, Clicks: clicks}
	}
	return out
}

func TestPBMRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gamma := []float64{1.0, 0.7, 0.45, 0.3, 0.2}
	sessions := simulatePBM(rng, 30000, gamma)

	m := NewPBM()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	// PBM's (gamma, alpha) factorisation is identifiable only up to a
	// multiplicative constant; compare the products gamma_i*alpha_d via
	// the ratio of fitted to true gamma at position 0.
	scale := m.Gamma[0] / gamma[0]
	for i := range gamma {
		got := m.Gamma[i] / scale
		if math.Abs(got-gamma[i]) > 0.06 {
			t.Errorf("gamma[%d] = %.3f (rescaled), want %.3f", i, got, gamma[i])
		}
	}
	for d := 0; d < simDocs; d++ {
		a, ok := m.Alpha[qd{"q", docName(d)}]
		if !ok {
			t.Fatalf("no alpha for doc %s", docName(d))
		}
		if math.Abs(a*scale-truthAlpha(d)) > 0.06 {
			t.Errorf("alpha[%s] = %.3f (rescaled), want %.3f", docName(d), a*scale, truthAlpha(d))
		}
	}
}

func TestPBMGammaDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gamma := []float64{0.9, 0.6, 0.4, 0.25}
	m := NewPBM()
	if err := m.Fit(simulatePBM(rng, 10000, gamma)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Gamma); i++ {
		if m.Gamma[i] >= m.Gamma[i-1] {
			t.Errorf("fitted gamma not decreasing at %d: %v", i, m.Gamma)
		}
	}
}

func TestCascadeRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sessions := simulateCascade(rng, 30000, 5)
	m := NewCascade()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < simDocs; d++ {
		a := m.alpha("q", docName(d))
		if math.Abs(a-truthAlpha(d)) > 0.05 {
			t.Errorf("alpha[%s] = %.3f, want %.3f", docName(d), a, truthAlpha(d))
		}
	}
}

func TestCascadeSingleClickLikelihood(t *testing.T) {
	m := NewCascade()
	m.Alpha = map[qd]float64{{"q", "a"}: 0.3, {"q", "b"}: 0.5}
	s := Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{false, true}}
	want := math.Log(0.7) + math.Log(0.5)
	if got := m.SessionLogLikelihood(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("LL = %v, want %v", got, want)
	}
	// Multi-click sessions are impossible under cascade: hugely negative.
	multi := Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, true}}
	if got := m.SessionLogLikelihood(multi); got > math.Log(probEps)/2 {
		t.Errorf("multi-click LL = %v, want very negative", got)
	}
}

func TestDBNRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const sat, gamma = 0.6, 0.85
	sessions := simulateDBN(rng, 40000, 6, sat, gamma)
	m := NewDBN()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Gamma-gamma) > 0.08 {
		t.Errorf("gamma = %.3f, want %.3f", m.Gamma, gamma)
	}
	for d := 0; d < simDocs; d++ {
		a := m.a("q", docName(d))
		if math.Abs(a-truthAlpha(d)) > 0.07 {
			t.Errorf("a[%s] = %.3f, want %.3f", docName(d), a, truthAlpha(d))
		}
		s := m.s("q", docName(d))
		if math.Abs(s-sat) > 0.12 {
			t.Errorf("s[%s] = %.3f, want %.3f", docName(d), s, sat)
		}
	}
}

func TestSDBNClosedForm(t *testing.T) {
	// Two hand-built sessions: doc a clicked once in 2 examined
	// impressions, last click both times for b.
	sessions := []Session{
		{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, true}},
		{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{false, true}},
	}
	m := NewSDBN()
	m.LaplaceA, m.LaplaceB = 0, 0 // raw MLE for hand-checking
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	if got := m.a("q", "a"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("a(a) = %v, want 0.5", got)
	}
	if got := m.a("q", "b"); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("a(b) = %v, want 1", got)
	}
	// a was clicked once, never as last click; b last-clicked 2/2.
	if got := m.s("q", "a"); got > 1e-6 {
		t.Errorf("s(a) = %v, want 0", got)
	}
	if got := m.s("q", "b"); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("s(b) = %v, want 1", got)
	}
}

func TestUBMFitsAndScores(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	sessions := simulateDBN(rng, 8000, 5, 0.5, 0.9)
	m := NewUBM()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions[:100] {
		probs := m.ClickProbs(s)
		for i, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("ClickProbs[%d] = %v out of range", i, p)
			}
		}
		if ll := m.SessionLogLikelihood(s); math.IsNaN(ll) || ll > 0 {
			t.Fatalf("bad LL %v", ll)
		}
	}
	// Triangular gamma shape: row i has i+1 cells.
	for i, row := range m.Gamma {
		if len(row) != i+1 {
			t.Errorf("gamma row %d has %d cells, want %d", i, len(row), i+1)
		}
	}
}

func TestBBMPosteriorMean(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	sessions := simulatePBM(rng, 10000, []float64{1, 0.6, 0.35, 0.2})
	m := NewBBM()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	// Posterior means must be ordered like the planted attractiveness.
	prev := -1.0
	for d := 0; d < simDocs; d++ {
		pm := m.PosteriorMean("q", docName(d))
		if pm < 0 || pm > 1 {
			t.Fatalf("posterior mean out of range: %v", pm)
		}
		if pm <= prev {
			t.Errorf("posterior mean not increasing with planted relevance: doc %d %.3f <= %.3f", d, pm, prev)
		}
		prev = pm
	}
	if got := m.PosteriorMean("q", "unseen-doc"); got != 0.5 {
		t.Errorf("unseen doc posterior = %v, want prior 0.5", got)
	}
}

func TestCCMFitImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	sessions := simulateDBN(rng, 10000, 5, 0.5, 0.85)
	m := NewCCM()
	m.Iterations = 1
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	ll1 := LogLikelihood(m, sessions)
	m2 := NewCCM()
	m2.Iterations = 15
	if err := m2.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	ll15 := LogLikelihood(m2, sessions)
	if ll15 < ll1-1e-6 {
		t.Errorf("more EM iterations decreased LL: %v -> %v", ll1, ll15)
	}
	if m2.Alpha1 <= 0 || m2.Alpha1 >= 1 || m2.Alpha2 <= 0 || m2.Alpha3 >= 1 {
		t.Errorf("alphas left their domain: %v %v %v", m2.Alpha1, m2.Alpha2, m2.Alpha3)
	}
}

func TestGCMSubsumesDCMShape(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	sessions := simulateDBN(rng, 15000, 5, 0.55, 0.9)
	m := NewGCM()
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	// Relevance ordering must match the planted attractiveness ordering.
	for d := 1; d < simDocs; d++ {
		if m.r("q", docName(d)) <= m.r("q", docName(d-1)) {
			t.Errorf("relevance ordering violated at doc %d", d)
		}
	}
}

func TestAllModelsFitAndEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	train := simulateDBN(rng, 6000, 5, 0.5, 0.85)
	test := simulateDBN(rng, 2000, 5, 0.5, 0.85)
	for _, m := range All() {
		t.Run(m.Name(), func(t *testing.T) {
			if err := m.Fit(train); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			ev := Evaluate(m, test)
			if math.IsNaN(ev.LogLikelihood) || ev.LogLikelihood > 0 {
				t.Errorf("bad mean LL %v", ev.LogLikelihood)
			}
			if ev.Perplexity < 1 {
				t.Errorf("perplexity %v < 1", ev.Perplexity)
			}
			if ev.Perplexity > 2.2 {
				t.Errorf("perplexity %v absurdly high for a fitted model", ev.Perplexity)
			}
			for _, s := range test[:50] {
				for i, p := range m.ClickProbs(s) {
					if p < 0 || p > 1 || math.IsNaN(p) {
						t.Fatalf("%s ClickProbs[%d] = %v", m.Name(), i, p)
					}
				}
			}
		})
	}
}

func TestFitRejectsBadLogs(t *testing.T) {
	bad := []Session{{Query: "q", Docs: []string{"a"}, Clicks: nil}}
	for _, m := range All() {
		if err := m.Fit(nil); err == nil {
			t.Errorf("%s accepted empty log", m.Name())
		}
		if err := m.Fit(bad); err == nil {
			t.Errorf("%s accepted malformed session", m.Name())
		}
	}
}

func TestMeanCTRByPosition(t *testing.T) {
	sessions := []Session{
		{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, false}},
		{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, true}},
		{Query: "q", Docs: []string{"a"}, Clicks: []bool{false}},
	}
	got := MeanCTRByPosition(sessions)
	want := []float64{2.0 / 3.0, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("position %d CTR = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPerplexityPerfectAndRandom(t *testing.T) {
	// A model predicting the empirical CTR at a position where all
	// sessions agree should approach perplexity 1; predicting 0.5
	// everywhere gives exactly 2.
	sessions := []Session{
		{Query: "q", Docs: []string{"a"}, Clicks: []bool{false}},
		{Query: "q", Docs: []string{"a"}, Clicks: []bool{false}},
	}
	half := &constModel{p: 0.5}
	overall, _ := Perplexity(half, sessions)
	if math.Abs(overall-2) > 1e-9 {
		t.Errorf("coin-flip perplexity = %v, want 2", overall)
	}
	sharp := &constModel{p: probEps}
	overall, _ = Perplexity(sharp, sessions)
	if overall > 1.001 {
		t.Errorf("near-perfect perplexity = %v, want ~1", overall)
	}
}

// constModel predicts a constant click probability everywhere.
type constModel struct{ p float64 }

func (c *constModel) Name() string        { return "const" }
func (c *constModel) Fit([]Session) error { return nil }
func (c *constModel) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	for i := range out {
		out[i] = c.p
	}
	return out
}
func (c *constModel) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	for _, cl := range s.Clicks {
		ll += bernoulliLL(c.p, cl)
	}
	return ll
}

func BenchmarkPBMFit(b *testing.B) {
	rng := rand.New(rand.NewSource(50))
	sessions := simulatePBM(rng, 5000, []float64{1, 0.6, 0.35, 0.2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewPBM()
		m.Iterations = 5
		if err := m.Fit(sessions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBNFit(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	sessions := simulateDBN(rng, 5000, 5, 0.5, 0.85)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewDBN()
		m.Iterations = 5
		if err := m.Fit(sessions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUBMClickProbs(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	sessions := simulateDBN(rng, 2000, 8, 0.5, 0.85)
	m := NewUBM()
	m.Iterations = 5
	if err := m.Fit(sessions); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClickProbs(sessions[i%len(sessions)])
	}
}
