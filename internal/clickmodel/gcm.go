package clickmodel

// GCM is a generalised chain click model in the spirit of Zhu et al.'s
// general click model, which treats examination and relevance effects as
// random variables and subsumes the cascade family by suitable choices.
// The original uses probit-linked latent variables with Bayesian
// inference; this reproduction keeps the *conditional specification* —
// the distinguishing structure — with per-position continuation
// parameters estimated by EM over the compiled log:
//
//	P(E_{i+1} = 1 | E_i = 1, C_i = 0) = lambdaSkip[i]
//	P(E_{i+1} = 1 | E_i = 1, C_i = 1) = lambdaClick[i]
//	P(C_i = 1 | E_i = 1)              = r(q, d_i)
//
// Special cases: cascade (lambdaSkip = 1, lambdaClick = 0), DCM
// (lambdaSkip = 1, lambdaClick = lambda_i), DBN with fixed satisfaction,
// and CCM with position-tied alphas.
type GCM struct {
	Rel         map[qd]float64
	LambdaSkip  []float64
	LambdaClick []float64

	Iterations int
	PriorR     float64
	// Workers caps the parallel E-step fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewGCM returns a GCM with default hyper-parameters.
func NewGCM() *GCM { return &GCM{Iterations: 20, PriorR: 0.5} }

// Name implements Model.
func (m *GCM) Name() string { return "GCM" }

// SetIterations implements IterativeModel.
func (m *GCM) SetIterations(n int) { m.Iterations = n }

func (m *GCM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorR <= 0 || m.PriorR >= 1 {
		m.PriorR = 0.5
	}
}

func (m *GCM) r(q, d string) float64 {
	if v, ok := m.Rel[qd{q, d}]; ok {
		return v
	}
	return m.PriorR
}

func (m *GCM) lSkip(i int) float64 {
	if i < len(m.LambdaSkip) {
		return m.LambdaSkip[i]
	}
	return 0.5
}

func (m *GCM) lClick(i int) float64 {
	if i < len(m.LambdaClick) {
		return m.LambdaClick[i]
	}
	return 0.5
}

// tailPosterior enumerates the latent stop position past the last
// click. This Session-based form serves SessionLogLikelihood; the
// compiled E-step inlines the same enumeration over worker scratch.
func (m *GCM) tailPosterior(s Session, last int) (pExam []float64, z float64) {
	n := len(s.Docs)
	pExam = make([]float64, n)
	wStop := make([]float64, n)

	start := last
	cont0 := 1.0
	if last >= 0 {
		cont0 = m.lClick(last)
	} else {
		start = 0
	}
	cur := 1.0
	for t := start; t < n; t++ {
		switch {
		case last >= 0 && t == last:
			// No factors: the click itself is accounted upstream.
		case last >= 0 && t == last+1:
			cur *= cont0 * (1 - m.r(s.Query, s.Docs[t]))
		case last < 0 && t == 0:
			cur *= 1 - m.r(s.Query, s.Docs[t]) // E_1 = 1 always
		default:
			cur *= m.lSkip(t-1) * (1 - m.r(s.Query, s.Docs[t]))
		}
		w := cur
		if t < n-1 {
			stop := 1 - m.lSkip(t)
			if last >= 0 && t == last {
				stop = 1 - cont0
			}
			w *= stop
		}
		wStop[t] = w
	}

	for _, w := range wStop {
		z += w
	}
	if z <= 0 {
		z = probEps
	}
	suffix := 0.0
	for j := n - 1; j > last; j-- {
		suffix += wStop[j]
		pExam[j] = suffix / z
	}
	return pExam, z
}

// Fit implements Model: compile the log, then run the dense EM.
func (m *GCM) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// gcmAccStride is one worker's accumulator layout:
// [rNum | rDen | skipNum | skipDen | clickNum | clickDen].
func gcmAccStride(nPair, n int) int { return 2*nPair + 4*n }

// FitLog runs EM over a compiled log.
func (m *GCM) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	n := c.maxPos
	nPair := c.NumPairs()
	stride := gcmAccStride(nPair, n)
	workers := emWorkers(m.Workers, c.NumSessions())

	m.LambdaSkip = reuseFloats(m.LambdaSkip, n)
	m.LambdaClick = reuseFloats(m.LambdaClick, n)
	for i := 0; i < n; i++ {
		m.LambdaSkip[i] = 0.9
		m.LambdaClick[i] = 0.6
	}

	fs, buf := getScratch(nPair + workers*(stride+c.maxPos))
	defer putScratch(fs)
	sl := slab{buf}
	rel := sl.take(nPair)
	for p := range rel {
		rel[p] = m.PriorR
	}
	accAll := sl.take(workers * stride)
	tails := sl.take(workers * c.maxPos)

	nSess := c.NumSessions()
	for iter := 0; iter < m.Iterations; iter++ {
		if iter > 0 {
			clear(accAll)
		}
		if workers == 1 {
			gcmEStep(c, rel, m.LambdaSkip, m.LambdaClick, accAll[:stride], tails, 0, nSess)
		} else {
			forEachShard(workers, nSess, func(w, lo, hi int) {
				gcmEStep(c, rel, m.LambdaSkip, m.LambdaClick,
					accAll[w*stride:(w+1)*stride],
					tails[w*c.maxPos:(w+1)*c.maxPos], lo, hi)
			})
		}
		acc := mergeShards(accAll, stride, workers)
		rNum := acc[:nPair]
		rDen := acc[nPair : 2*nPair]
		skipNum := acc[2*nPair : 2*nPair+n]
		skipDen := acc[2*nPair+n : 2*nPair+2*n]
		clickNum := acc[2*nPair+2*n : 2*nPair+3*n]
		clickDen := acc[2*nPair+3*n:]

		for p := 0; p < nPair; p++ {
			if rDen[p] > 0 {
				rel[p] = clampProb(rNum[p] / rDen[p])
			}
		}
		for i := 0; i < n; i++ {
			if skipDen[i] > 0 {
				m.LambdaSkip[i] = clampProb(skipNum[i] / skipDen[i])
			}
			if clickDen[i] > 0 {
				m.LambdaClick[i] = clampProb(clickNum[i] / clickDen[i])
			}
		}
	}

	m.Rel = c.materializeInto(m.Rel, rel)
	return nil
}

// gcmEStep accumulates one worker's posteriors for the sessions
// [lo, hi). acc is laid out as gcmAccStride describes; tails provides
// the wStop scratch (the examination posterior is folded into the
// suffix scan, so no pExam buffer is needed).
func gcmEStep(c *CompiledLog, rel, lSkip, lClick []float64, acc, tails []float64, lo, hi int) {
	nPair := len(rel)
	n := len(lSkip)
	rNum := acc[:nPair]
	rDen := acc[nPair : 2*nPair]
	skipNum := acc[2*nPair : 2*nPair+n]
	skipDen := acc[2*nPair+n : 2*nPair+2*n]
	clickNum := acc[2*nPair+2*n : 2*nPair+3*n]
	clickDen := acc[2*nPair+3*n:]
	wStop := tails

	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		ns := int(e - b)
		last := int(c.last[s])

		for j := 0; j <= last; j++ {
			p := c.pair[b+int32(j)]
			rDen[p]++
			if c.click[b+int32(j)] {
				rNum[p]++
				if j < last {
					clickNum[j]++
					clickDen[j]++
				}
			} else if j < last {
				skipNum[j]++
				skipDen[j]++
			}
		}

		// Tail posterior: enumerate the latent stop position.
		start := last
		cont0 := 1.0
		if last >= 0 {
			cont0 = lClick[last]
		} else {
			start = 0
		}
		cur := 1.0
		for t := start; t < ns; t++ {
			switch {
			case last >= 0 && t == last:
				// No factors: the click itself is accounted upstream.
			case last >= 0 && t == last+1:
				cur *= cont0 * (1 - rel[c.pair[b+int32(t)]])
			case last < 0 && t == 0:
				cur *= 1 - rel[c.pair[b+int32(t)]] // E_1 = 1 always
			default:
				cur *= lSkip[t-1] * (1 - rel[c.pair[b+int32(t)]])
			}
			w := cur
			if t < ns-1 {
				stop := 1 - lSkip[t]
				if last >= 0 && t == last {
					stop = 1 - cont0
				}
				w *= stop
			}
			wStop[t] = w
		}
		var z float64
		for t := start; t < ns; t++ {
			z += wStop[t]
		}
		if z <= 0 {
			z = probEps
		}

		// Suffix scan: pExam[j] = sum_{t>=j} wStop[t] / z for j > last.
		// Walk backwards, accumulating the suffix and crediting the
		// lambda accumulators from the already-known pExam[j+1].
		suffix := 0.0
		prevExam := 0.0 // pExam[j+1] during the walk
		for j := ns - 1; j > last; j-- {
			suffix += wStop[j]
			exam := suffix / z
			p := c.pair[b+int32(j)]
			rDen[p] += exam
			if j < ns-1 {
				skipDen[j] += exam
				skipNum[j] += prevExam
			}
			prevExam = exam
		}
		if last >= 0 && last < ns-1 {
			clickDen[last]++
			clickNum[last] += prevExam // pExam[last+1]
		}
	}
}

// ClickProbs implements Model via the forward examination recursion.
func (m *GCM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *GCM) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		r := m.r(s.Query, d)
		out[i] = exam * r
		exam *= r*m.lClick(i) + (1-r)*m.lSkip(i)
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *GCM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		r := m.r(s.Query, d)
		exam *= r*m.lClick(i) + (1-r)*m.lSkip(i)
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *GCM) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		r := m.r(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(r)
			if j < last {
				ll += log(m.lClick(j))
			}
		} else {
			ll += log(1-r) + log(m.lSkip(j))
		}
	}
	_, z := m.tailPosterior(s, last)
	ll += log(z)
	return ll
}
