package clickmodel

// GCM is a generalised chain click model in the spirit of Zhu et al.'s
// general click model, which treats examination and relevance effects as
// random variables and subsumes the cascade family by suitable choices.
// The original uses probit-linked latent variables with Bayesian
// inference; this reproduction keeps the *conditional specification* —
// the distinguishing structure — with per-position continuation
// parameters estimated by EM:
//
//	P(E_{i+1} = 1 | E_i = 1, C_i = 0) = lambdaSkip[i]
//	P(E_{i+1} = 1 | E_i = 1, C_i = 1) = lambdaClick[i]
//	P(C_i = 1 | E_i = 1)              = r(q, d_i)
//
// Special cases: cascade (lambdaSkip = 1, lambdaClick = 0), DCM
// (lambdaSkip = 1, lambdaClick = lambda_i), DBN with fixed satisfaction,
// and CCM with position-tied alphas.
type GCM struct {
	Rel         map[qd]float64
	LambdaSkip  []float64
	LambdaClick []float64

	Iterations int
	PriorR     float64
}

// NewGCM returns a GCM with default hyper-parameters.
func NewGCM() *GCM { return &GCM{Iterations: 20, PriorR: 0.5} }

// Name implements Model.
func (m *GCM) Name() string { return "GCM" }

func (m *GCM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorR <= 0 || m.PriorR >= 1 {
		m.PriorR = 0.5
	}
}

func (m *GCM) r(q, d string) float64 {
	if v, ok := m.Rel[qd{q, d}]; ok {
		return v
	}
	return m.PriorR
}

func (m *GCM) lSkip(i int) float64 {
	if i < len(m.LambdaSkip) {
		return m.LambdaSkip[i]
	}
	return 0.5
}

func (m *GCM) lClick(i int) float64 {
	if i < len(m.LambdaClick) {
		return m.LambdaClick[i]
	}
	return 0.5
}

// tailPosterior enumerates the latent stop position past the last click.
func (m *GCM) tailPosterior(s Session, last int) (pExam []float64, z float64) {
	n := len(s.Docs)
	pExam = make([]float64, n)
	wStop := make([]float64, n)

	start := last
	cont0 := 1.0
	if last >= 0 {
		cont0 = m.lClick(last)
	} else {
		start = 0
	}
	cur := 1.0
	for t := start; t < n; t++ {
		switch {
		case last >= 0 && t == last:
			// No factors: the click itself is accounted upstream.
		case last >= 0 && t == last+1:
			cur *= cont0 * (1 - m.r(s.Query, s.Docs[t]))
		case last < 0 && t == 0:
			cur *= 1 - m.r(s.Query, s.Docs[t]) // E_1 = 1 always
		default:
			cur *= m.lSkip(t-1) * (1 - m.r(s.Query, s.Docs[t]))
		}
		w := cur
		if t < n-1 {
			stop := 1 - m.lSkip(t)
			if last >= 0 && t == last {
				stop = 1 - cont0
			}
			w *= stop
		}
		wStop[t] = w
	}

	for _, w := range wStop {
		z += w
	}
	if z <= 0 {
		z = probEps
	}
	suffix := 0.0
	for j := n - 1; j > last; j-- {
		suffix += wStop[j]
		pExam[j] = suffix / z
	}
	return pExam, z
}

// Fit implements Model.
func (m *GCM) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	n := maxPositions(sessions)
	m.LambdaSkip = make([]float64, n)
	m.LambdaClick = make([]float64, n)
	for i := 0; i < n; i++ {
		m.LambdaSkip[i] = 0.9
		m.LambdaClick[i] = 0.6
	}
	m.Rel = make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			m.Rel[qd{s.Query, d}] = m.PriorR
		}
	}

	type acc struct{ num, den float64 }
	for iter := 0; iter < m.Iterations; iter++ {
		rAcc := make(map[qd]acc, len(m.Rel))
		skipNum := make([]float64, n)
		skipDen := make([]float64, n)
		clickNum := make([]float64, n)
		clickDen := make([]float64, n)

		for _, sess := range sessions {
			ns := len(sess.Docs)
			last := sess.LastClick()

			for j := 0; j <= last; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den++
				if sess.Clicks[j] {
					ra.num++
				}
				rAcc[k] = ra
				if j < last {
					if sess.Clicks[j] {
						clickNum[j]++
						clickDen[j]++
					} else {
						skipNum[j]++
						skipDen[j]++
					}
				}
			}

			pExam, _ := m.tailPosterior(sess, last)

			if last >= 0 && last < ns-1 {
				clickDen[last]++
				clickNum[last] += pExam[last+1]
			}
			for j := last + 1; j < ns; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den += pExam[j]
				rAcc[k] = ra
				if j < ns-1 {
					skipDen[j] += pExam[j]
					skipNum[j] += pExam[j+1]
				}
			}
		}

		for k, ra := range rAcc {
			if ra.den > 0 {
				m.Rel[k] = clampProb(ra.num / ra.den)
			}
		}
		for i := 0; i < n; i++ {
			if skipDen[i] > 0 {
				m.LambdaSkip[i] = clampProb(skipNum[i] / skipDen[i])
			}
			if clickDen[i] > 0 {
				m.LambdaClick[i] = clampProb(clickNum[i] / clickDen[i])
			}
		}
	}
	return nil
}

// ClickProbs implements Model via the forward examination recursion.
func (m *GCM) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		r := m.r(s.Query, d)
		out[i] = exam * r
		exam *= r*m.lClick(i) + (1-r)*m.lSkip(i)
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *GCM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		r := m.r(s.Query, d)
		exam *= r*m.lClick(i) + (1-r)*m.lSkip(i)
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *GCM) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		r := m.r(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(r)
			if j < last {
				ll += log(m.lClick(j))
			}
		} else {
			ll += log(1-r) + log(m.lSkip(j))
		}
	}
	_, z := m.tailPosterior(s, last)
	ll += log(z)
	return ll
}
