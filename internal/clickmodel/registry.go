package clickmodel

import (
	"fmt"
	"strings"
	"sync"
)

// Factory constructs a fresh, unfitted instance of one click model.
type Factory func() Model

// registry maps canonical (lower-case) model names to factories. The
// built-in models register themselves in init below; external callers
// may add their own with Register. Guarded by a mutex so registration
// and lookup are safe from concurrent goroutines (the engine resolves
// names lazily from its worker pool).
var registry = struct {
	sync.RWMutex
	factories map[string]Factory
	order     []string // registration order, for Names/All
}{factories: make(map[string]Factory)}

// Register makes a model constructible by name. Names are
// case-insensitive; registering an empty name, a nil factory or a
// duplicate name panics — all three are programmer errors that should
// fail loudly at process start, not at request time.
func Register(name string, f Factory) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		panic("clickmodel: Register with empty name")
	}
	if f == nil {
		panic("clickmodel: Register " + name + " with nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[key]; dup {
		panic("clickmodel: Register called twice for " + key)
	}
	registry.factories[key] = f
	registry.order = append(registry.order, key)
}

// Lookup returns the factory registered under name (case-insensitive).
// Unknown names return a descriptive error listing the valid choices.
func Lookup(name string) (Factory, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	registry.RLock()
	f, ok := registry.factories[key]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("clickmodel: unknown model %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f, nil
}

// New constructs a fresh, unfitted model by registry name.
func New(name string) (Model, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// Names returns every registered model name in registration order —
// for the built-ins, the paper's related-work taxonomy order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

func init() {
	Register("pbm", func() Model { return NewPBM() })
	Register("cascade", func() Model { return NewCascade() })
	Register("dcm", func() Model { return NewDCM() })
	Register("ubm", func() Model { return NewUBM() })
	Register("bbm", func() Model { return NewBBM() })
	Register("ccm", func() Model { return NewCCM() })
	Register("dbn", func() Model { return NewDBN() })
	Register("sdbn", func() Model { return NewSDBN() })
	Register("gcm", func() Model { return NewGCM() })
	Register("sum", func() Model { return NewSUM() })
}
