package clickmodel

import (
	"math"
	"math/rand"
	"testing"
)

// statsTestLog builds a deterministic synthetic log with multi-click
// sessions, no-click sessions and varying lengths.
func statsTestLog(n int, seed int64) []Session {
	rng := rand.New(rand.NewSource(seed))
	docs := []string{"a", "b", "c", "d", "e", "f", "g"}
	queries := []string{"q1", "q2", "q3"}
	out := make([]Session, 0, n)
	for k := 0; k < n; k++ {
		ln := 3 + rng.Intn(3)
		s := Session{Query: queries[rng.Intn(len(queries))], Docs: make([]string, ln), Clicks: make([]bool, ln)}
		for i := range s.Docs {
			s.Docs[i] = docs[rng.Intn(len(docs))]
			s.Clicks[i] = rng.Float64() < 0.35/float64(i+1)
		}
		out = append(out, s)
	}
	return out
}

// fitPair fits one model instance through the batch path and one
// through the incremental path over the same sessions.
func fitPair[M Model](t *testing.T, batch, online M, sessions []Session) {
	t.Helper()
	if err := batch.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	st := NewStats()
	if err := st.AddAll(sessions); err != nil {
		t.Fatal(err)
	}
	sf, ok := any(online).(StatsFitter)
	if !ok {
		t.Fatalf("%s does not implement StatsFitter", online.Name())
	}
	if err := sf.FitStats(st); err != nil {
		t.Fatal(err)
	}
}

func mapsEqual(t *testing.T, what string, a, b map[qd]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d entries batch vs %d incremental", what, len(a), len(b))
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok {
			t.Fatalf("%s: %v missing from incremental fit", what, k)
		}
		if math.Abs(v-w) > 1e-12 {
			t.Fatalf("%s[%v] = %v batch vs %v incremental", what, k, v, w)
		}
	}
}

// TestStatsParity is the core guarantee of the online loop: folding a
// log session-by-session into a Stats and fitting from the accumulated
// counts gives bit-identical parameters to the batch compile-and-count
// path, for every counting-family model.
func TestStatsParity(t *testing.T) {
	sessions := statsTestLog(3000, 42)

	t.Run("sdbn", func(t *testing.T) {
		batch, online := NewSDBN(), NewSDBN()
		fitPair(t, batch, online, sessions)
		mapsEqual(t, "AttrA", batch.AttrA, online.AttrA)
		mapsEqual(t, "SatS", batch.SatS, online.SatS)
	})
	t.Run("cascade", func(t *testing.T) {
		batch, online := NewCascade(), NewCascade()
		fitPair(t, batch, online, sessions)
		mapsEqual(t, "Alpha", batch.Alpha, online.Alpha)
	})
	t.Run("dcm", func(t *testing.T) {
		batch, online := NewDCM(), NewDCM()
		fitPair(t, batch, online, sessions)
		mapsEqual(t, "Alpha", batch.Alpha, online.Alpha)
		if len(batch.Lambda) != len(online.Lambda) {
			t.Fatalf("lambda lengths %d vs %d", len(batch.Lambda), len(online.Lambda))
		}
		for i := range batch.Lambda {
			if math.Abs(batch.Lambda[i]-online.Lambda[i]) > 1e-12 {
				t.Fatalf("Lambda[%d] = %v vs %v", i, batch.Lambda[i], online.Lambda[i])
			}
		}
	})
}

// TestStatsMergeParity: sharded accumulation (one Stats per shard,
// merged into a global) equals single-accumulator accumulation — the
// shape the stream layer runs.
func TestStatsMergeParity(t *testing.T) {
	sessions := statsTestLog(2000, 7)
	single := NewStats()
	if err := single.AddAll(sessions); err != nil {
		t.Fatal(err)
	}

	const shards = 4
	global := NewStats()
	deltas := make([]*Stats, shards)
	idmaps := make([][]int32, shards)
	for i := range deltas {
		deltas[i] = NewStats()
	}
	for i, s := range sessions {
		if err := deltas[i%shards].Add(s); err != nil {
			t.Fatal(err)
		}
	}
	// Merge in two rounds with a Reset between, exercising the delta
	// lifecycle (counts move, interning persists).
	for round := 0; round < 2; round++ {
		for i, d := range deltas {
			idmaps[i] = global.Merge(d, idmaps[i])
			d.Reset()
		}
		if round == 0 {
			for i, s := range sessions[:200] {
				if err := deltas[i%shards].Add(s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i, s := range sessions[:200] {
		if err := single.Add(s); err != nil {
			t.Fatal(err)
		}
		_ = i
	}

	a, b := NewSDBN(), NewSDBN()
	if err := a.FitStats(single); err != nil {
		t.Fatal(err)
	}
	if err := b.FitStats(global); err != nil {
		t.Fatal(err)
	}
	mapsEqual(t, "AttrA", a.AttrA, b.AttrA)
	mapsEqual(t, "SatS", a.SatS, b.SatS)
	if single.Weight() != global.Weight() {
		t.Fatalf("weights %v vs %v", single.Weight(), global.Weight())
	}
}

// TestStatsDecay: decayed counts halve the session mass and pull
// estimates toward the newer traffic.
func TestStatsDecay(t *testing.T) {
	st := NewStats()
	old := Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, false}}
	if err := st.Add(old); err != nil {
		t.Fatal(err)
	}
	st.Decay(0.5)
	if w := st.Weight(); math.Abs(w-0.5) > 1e-15 {
		t.Fatalf("weight after decay = %v, want 0.5", w)
	}
	// New traffic never clicks a: the decayed old click should weigh
	// half against each fresh skip.
	fresh := Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{false, false}}
	for i := 0; i < 4; i++ {
		if err := st.Add(fresh); err != nil {
			t.Fatal(err)
		}
	}
	m := NewSDBN()
	if err := m.FitStats(st); err != nil {
		t.Fatal(err)
	}
	// a: clicks 0.5, exams 4.5 -> (0.5+1)/(4.5+2)
	want := (0.5 + 1) / (4.5 + 2)
	if got := m.AttrA[qd{"q", "a"}]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("decayed attractiveness = %v, want %v", got, want)
	}
	// Full decay to zero is allowed and FitStats still works (priors).
	st.Decay(0)
	if st.Weight() != 0 {
		t.Fatalf("weight after Decay(0) = %v", st.Weight())
	}
	// Decay with f >= 1 or < 0 is a no-op.
	st2 := NewStats()
	if err := st2.Add(old); err != nil {
		t.Fatal(err)
	}
	st2.Decay(1.5)
	st2.Decay(-1)
	if st2.Weight() != 1 {
		t.Fatalf("out-of-range decay changed weight: %v", st2.Weight())
	}
}

// TestStatsReset: reset keeps interning (stable pair IDs for cached
// idmaps) but drops every count.
func TestStatsReset(t *testing.T) {
	st := NewStats()
	s := Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, false}}
	if err := st.Add(s); err != nil {
		t.Fatal(err)
	}
	pairsBefore := st.NumPairs()
	st.Reset()
	if st.NumPairs() != pairsBefore {
		t.Fatalf("Reset dropped interned pairs: %d -> %d", pairsBefore, st.NumPairs())
	}
	if st.Weight() != 0 || st.Added() != 0 {
		t.Fatalf("Reset left mass behind: weight %v added %d", st.Weight(), st.Added())
	}
	m := NewSDBN()
	if err := m.FitStats(st); err != nil {
		t.Fatal(err)
	}
	if len(m.AttrA) != 0 {
		t.Fatalf("zeroed stats produced parameters: %v", m.AttrA)
	}
}

// TestStatsInvalidSession: a malformed session is rejected and leaves
// the accumulator untouched.
func TestStatsInvalidSession(t *testing.T) {
	st := NewStats()
	bad := Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{true, false}}
	if err := st.Add(bad); err == nil {
		t.Fatal("invalid session accepted")
	}
	if st.Added() != 0 || st.NumPairs() != 0 {
		t.Fatalf("invalid session mutated the accumulator: %d pairs", st.NumPairs())
	}
	if err := NewSDBN().FitStats(NewStats()); err == nil {
		t.Fatal("FitStats on empty accumulator succeeded")
	}
	if err := NewCascade().FitStats(nil); err == nil {
		t.Fatal("FitStats(nil) succeeded")
	}
	if err := NewDCM().FitStats(NewStats()); err == nil {
		t.Fatal("DCM FitStats on empty accumulator succeeded")
	}
}

// TestStatsPrune: decayed-out pairs are dropped and the survivors keep
// their counts and stay addressable; cached idmaps must be rebuilt, so
// Merge after a prune still lands deltas on the right pairs.
func TestStatsPrune(t *testing.T) {
	st := NewStats()
	// hot clicks at the last position so both pairs count as examined.
	hot := Session{Query: "q", Docs: []string{"hot1", "hot2"}, Clicks: []bool{false, true}}
	cold := Session{Query: "q", Docs: []string{"cold1", "cold2"}, Clicks: []bool{false, true}}
	for i := 0; i < 10; i++ {
		if err := st.Add(hot); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Add(cold); err != nil {
		t.Fatal(err)
	}
	// Age the cold session far below the hot mass, then prune between.
	st.Decay(1e-5)
	for i := 0; i < 10; i++ {
		if err := st.Add(hot); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := st.Prune(1e-3); dropped != 2 {
		t.Fatalf("dropped %d pairs, want the 2 cold ones", dropped)
	}
	if st.NumPairs() != 2 {
		t.Fatalf("pairs after prune: %d", st.NumPairs())
	}
	m := NewSDBN()
	if err := m.FitStats(st); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.AttrA[qd{"q", "hot2"}]; !ok {
		t.Fatalf("survivor lost its parameters: %v", m.AttrA)
	}
	if _, ok := m.AttrA[qd{"q", "cold1"}]; ok {
		t.Fatalf("pruned pair still has parameters: %v", m.AttrA)
	}

	// Survivor counts are intact: attractiveness reflects the 10 fresh
	// clicks (plus decayed dust) over as many examined impressions.
	got := m.AttrA[qd{"q", "hot2"}]
	want := (10.0001 + 1) / (10.0001 + 2)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("survivor attractiveness %v, want ~%v", got, want)
	}

	// Fresh merges re-intern cleanly after renumbering.
	delta := NewStats()
	if err := delta.Add(cold); err != nil {
		t.Fatal(err)
	}
	st.Merge(delta, nil)
	if st.NumPairs() != 4 {
		t.Fatalf("pairs after post-prune merge: %d", st.NumPairs())
	}
}
