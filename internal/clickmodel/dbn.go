package clickmodel

// DBN is the dynamic Bayesian network model of Chapelle & Zhang. Each
// (query, doc) has an attractiveness a (perceived relevance: click given
// examination) and a satisfaction s (post-click relevance: the user stops
// when satisfied). A global continuation parameter gamma governs whether
// an unsatisfied user keeps examining:
//
//	P(C_i = 1 | E_i = 1)                  = a(q, d_i)
//	P(S_i = 1 | C_i = 1)                  = s(q, d_i)
//	P(E_{i+1} = 1 | E_i = 1, C_i = 0)     = gamma
//	P(E_{i+1} = 1 | E_i = 1, C_i = 1)     = gamma · (1 - s(q, d_i))
//
// Estimation is EM over the compiled log. Given the observed clicks,
// every position up to the last click is certainly examined; the only
// latent structure is where examination stopped in the tail and whether
// the last click satisfied the user. Both are handled exactly by
// enumerating the stop position, with per-worker scratch buffers
// replacing the per-session allocations of the map-based fit.
type DBN struct {
	AttrA map[qd]float64 // attractiveness
	SatS  map[qd]float64 // satisfaction
	Gamma float64        // continuation probability

	Iterations     int
	PriorA, PriorS float64
	// Workers caps the parallel E-step fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewDBN returns a DBN with default hyper-parameters.
func NewDBN() *DBN { return &DBN{Iterations: 20, PriorA: 0.5, PriorS: 0.5, Gamma: 0.9} }

// Name implements Model.
func (m *DBN) Name() string { return "DBN" }

// SetIterations implements IterativeModel.
func (m *DBN) SetIterations(n int) { m.Iterations = n }

func (m *DBN) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorA <= 0 || m.PriorA >= 1 {
		m.PriorA = 0.5
	}
	if m.PriorS <= 0 || m.PriorS >= 1 {
		m.PriorS = 0.5
	}
	if m.Gamma <= 0 || m.Gamma >= 1 {
		m.Gamma = 0.9
	}
}

func (m *DBN) a(q, d string) float64 {
	if v, ok := m.AttrA[qd{q, d}]; ok {
		return v
	}
	return m.PriorA
}

func (m *DBN) s(q, d string) float64 {
	if v, ok := m.SatS[qd{q, d}]; ok {
		return v
	}
	return m.PriorS
}

// tailPosterior computes, for a session whose last click is at index
// `last` (-1 for none), the posterior over the latent tail behaviour:
//
//   - pSat: P(user satisfied at the last click | observations)
//   - pExam[j] for j in (last, n): P(E_j = 1 | observations)
//   - z: the likelihood of the tail observations (all skips past `last`),
//     including the satisfaction/stop marginalisation at the last click.
//
// Enumeration is over t = last examined position. This Session-based
// form serves SessionLogLikelihood; the compiled E-step inlines the
// same enumeration over worker-owned scratch.
func (m *DBN) tailPosterior(s Session, last int) (pSat float64, pExam []float64, z float64) {
	n := len(s.Docs)
	pExam = make([]float64, n)
	g := m.Gamma

	// Branch weights: wStop[t] = joint probability of the tail
	// observations with examination stopping exactly at position t.
	wStop := make([]float64, n)
	var wSat float64

	if last >= 0 {
		sat := m.s(s.Query, s.Docs[last])
		wSat = sat
		cur := 1 - sat // unsatisfied, still deciding
		for t := last; t < n; t++ {
			if t > last {
				// Continue into t, which must then be skipped.
				cur *= g * (1 - m.a(s.Query, s.Docs[t]))
			}
			w := cur
			if t < n-1 {
				w *= 1 - g // explicit stop before the next position
			}
			wStop[t] = w
		}
	} else {
		cur := 1.0 // position 0 is always examined
		for t := 0; t < n; t++ {
			if t > 0 {
				cur *= g
			}
			cur0 := cur * (1 - m.a(s.Query, s.Docs[t]))
			cur = cur0
			w := cur0
			if t < n-1 {
				w *= 1 - g
			}
			wStop[t] = w
		}
	}

	z = wSat
	for _, w := range wStop {
		z += w
	}
	if z <= 0 {
		z = probEps
	}

	pSat = wSat / z
	// P(E_j = 1 | obs) for tail positions: examination reached j iff the
	// stop position t >= j (and the user was not satisfied).
	suffix := 0.0
	for j := n - 1; j > last; j-- {
		suffix += wStop[j]
		if j >= 0 {
			pExam[j] = suffix / z
		}
	}
	return pSat, pExam, z
}

// Fit implements Model: compile the log, then run the dense EM.
func (m *DBN) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// dbnAcc is the layout of one worker's accumulator region:
// [aNum | aDen | sNum | sDen | gNum gDen], pair-indexed plus two
// scalars at the end.
func dbnAccStride(nPair int) int { return 4*nPair + 2 }

// FitLog runs EM with exact tail enumeration over a compiled log.
func (m *DBN) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	nPair := c.NumPairs()
	stride := dbnAccStride(nPair)
	workers := emWorkers(m.Workers, c.NumSessions())

	fs, buf := getScratch(2*nPair + workers*(stride+2*c.maxPos))
	defer putScratch(fs)
	sl := slab{buf}
	attr := sl.take(nPair)
	sat := sl.take(nPair)
	for p := 0; p < nPair; p++ {
		attr[p] = m.PriorA
		sat[p] = m.PriorS
	}
	accAll := sl.take(workers * stride)
	tails := sl.take(workers * 2 * c.maxPos)

	nSess := c.NumSessions()
	for iter := 0; iter < m.Iterations; iter++ {
		if iter > 0 {
			clear(accAll)
		}
		g := m.Gamma
		if workers == 1 {
			dbnEStep(c, attr, sat, g, accAll[:stride], tails, 0, nSess)
		} else {
			forEachShard(workers, nSess, func(w, lo, hi int) {
				dbnEStep(c, attr, sat, g,
					accAll[w*stride:(w+1)*stride],
					tails[w*2*c.maxPos:(w+1)*2*c.maxPos], lo, hi)
			})
		}
		acc := mergeShards(accAll, stride, workers)
		aNum := acc[:nPair]
		aDen := acc[nPair : 2*nPair]
		sNum := acc[2*nPair : 3*nPair]
		sDen := acc[3*nPair : 4*nPair]
		gNum, gDen := acc[4*nPair], acc[4*nPair+1]

		for p := 0; p < nPair; p++ {
			if aDen[p] > 0 {
				attr[p] = clampProb(aNum[p] / aDen[p])
			}
			if sDen[p] > 0 {
				sat[p] = clampProb(sNum[p] / sDen[p])
			}
		}
		if gDen > 0 {
			m.Gamma = clampProb(gNum / gDen)
		}
	}

	m.AttrA = c.materializeInto(m.AttrA, attr)
	m.SatS = c.materializeInto(m.SatS, sat)
	return nil
}

// dbnEStep accumulates one worker's posteriors for the sessions
// [lo, hi). acc is laid out as dbnAccStride describes; tails provides
// the wStop/pExam scratch (maxPos entries each).
func dbnEStep(c *CompiledLog, attr, sat []float64, g float64, acc, tails []float64, lo, hi int) {
	nPair := len(attr)
	aNum := acc[:nPair]
	aDen := acc[nPair : 2*nPair]
	sNum := acc[2*nPair : 3*nPair]
	sDen := acc[3*nPair : 4*nPair]
	wStop := tails[:len(tails)/2]
	pExam := tails[len(tails)/2:]

	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		n := int(e - b)
		last := int(c.last[s])

		// Certainly-examined prefix.
		for j := 0; j <= last; j++ {
			p := c.pair[b+int32(j)]
			aDen[p]++
			if c.click[b+int32(j)] {
				aNum[p]++
			}
			if j < last {
				if c.click[b+int32(j)] {
					// Satisfied here is impossible: clicks follow.
					sDen[p]++
					// The continue decision was taken and succeeded.
				}
				acc[4*nPair]++ // gNum
				acc[4*nPair+1]++
			}
		}

		// Tail posterior: enumerate the latent stop position.
		var wSat float64
		if last >= 0 {
			sl := sat[c.pair[b+int32(last)]]
			wSat = sl
			cur := 1 - sl // unsatisfied, still deciding
			for t := last; t < n; t++ {
				if t > last {
					// Continue into t, which must then be skipped.
					cur *= g * (1 - attr[c.pair[b+int32(t)]])
				}
				w := cur
				if t < n-1 {
					w *= 1 - g // explicit stop before the next position
				}
				wStop[t] = w
			}
		} else {
			cur := 1.0 // position 0 is always examined
			for t := 0; t < n; t++ {
				if t > 0 {
					cur *= g
				}
				cur *= 1 - attr[c.pair[b+int32(t)]]
				w := cur
				if t < n-1 {
					w *= 1 - g
				}
				wStop[t] = w
			}
		}
		z := wSat
		start := last
		if start < 0 {
			start = 0
		}
		for t := start; t < n; t++ {
			z += wStop[t]
		}
		if z <= 0 {
			z = probEps
		}
		pSat := wSat / z
		suffix := 0.0
		for j := n - 1; j > last; j-- {
			suffix += wStop[j]
			pExam[j] = suffix / z
		}

		if last >= 0 {
			p := c.pair[b+int32(last)]
			sNum[p] += pSat
			sDen[p]++
			if last < n-1 {
				// Unsatisfied users took a gamma decision here.
				acc[4*nPair+1] += 1 - pSat
				acc[4*nPair] += pExam[last+1]
			}
		}
		for j := last + 1; j < n; j++ {
			p := c.pair[b+int32(j)]
			aDen[p] += pExam[j]
			if j < n-1 {
				acc[4*nPair+1] += pExam[j]
				acc[4*nPair] += pExam[j+1]
			}
		}
	}
}

// ClickProbs implements Model via the forward examination recursion.
func (m *DBN) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *DBN) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		a := m.a(s.Query, d)
		sat := m.s(s.Query, d)
		out[i] = exam * a
		exam *= m.Gamma * (a*(1-sat) + (1 - a))
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *DBN) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		a := m.a(s.Query, d)
		sat := m.s(s.Query, d)
		exam *= m.Gamma * (a*(1-sat) + (1 - a))
	}
	return out
}

// SessionLogLikelihood implements Model: exact likelihood with the
// certainly-examined prefix plus the marginalised tail.
func (m *DBN) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		a := m.a(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(a)
			if j < last {
				// Unsatisfied and continued.
				ll += log((1 - m.s(s.Query, s.Docs[j])) * m.Gamma)
			}
		} else {
			ll += log(1-a) + log(m.Gamma)
		}
	}
	_, _, z := m.tailPosterior(s, last)
	ll += log(z)
	return ll
}
