package clickmodel

// DBN is the dynamic Bayesian network model of Chapelle & Zhang. Each
// (query, doc) has an attractiveness a (perceived relevance: click given
// examination) and a satisfaction s (post-click relevance: the user stops
// when satisfied). A global continuation parameter gamma governs whether
// an unsatisfied user keeps examining:
//
//	P(C_i = 1 | E_i = 1)                  = a(q, d_i)
//	P(S_i = 1 | C_i = 1)                  = s(q, d_i)
//	P(E_{i+1} = 1 | E_i = 1, C_i = 0)     = gamma
//	P(E_{i+1} = 1 | E_i = 1, C_i = 1)     = gamma · (1 - s(q, d_i))
//
// Estimation is EM. Given the observed clicks, every position up to the
// last click is certainly examined; the only latent structure is where
// examination stopped in the tail and whether the last click satisfied the
// user. Both are handled exactly by enumerating the stop position.
type DBN struct {
	AttrA map[qd]float64 // attractiveness
	SatS  map[qd]float64 // satisfaction
	Gamma float64        // continuation probability

	Iterations     int
	PriorA, PriorS float64
}

// NewDBN returns a DBN with default hyper-parameters.
func NewDBN() *DBN { return &DBN{Iterations: 20, PriorA: 0.5, PriorS: 0.5, Gamma: 0.9} }

// Name implements Model.
func (m *DBN) Name() string { return "DBN" }

func (m *DBN) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorA <= 0 || m.PriorA >= 1 {
		m.PriorA = 0.5
	}
	if m.PriorS <= 0 || m.PriorS >= 1 {
		m.PriorS = 0.5
	}
	if m.Gamma <= 0 || m.Gamma >= 1 {
		m.Gamma = 0.9
	}
}

func (m *DBN) a(q, d string) float64 {
	if v, ok := m.AttrA[qd{q, d}]; ok {
		return v
	}
	return m.PriorA
}

func (m *DBN) s(q, d string) float64 {
	if v, ok := m.SatS[qd{q, d}]; ok {
		return v
	}
	return m.PriorS
}

// tailPosterior computes, for a session whose last click is at index
// `last` (-1 for none), the posterior over the latent tail behaviour:
//
//   - pSat: P(user satisfied at the last click | observations)
//   - pExam[j] for j in (last, n): P(E_j = 1 | observations)
//   - z: the likelihood of the tail observations (all skips past `last`),
//     including the satisfaction/stop marginalisation at the last click.
//
// Enumeration is over t = last examined position. For t beyond `last`,
// the user was unsatisfied, continued, and skipped everything through t.
func (m *DBN) tailPosterior(s Session, last int) (pSat float64, pExam []float64, z float64) {
	n := len(s.Docs)
	pExam = make([]float64, n)
	g := m.Gamma

	// Branch weights: wStop[t] = joint probability of the tail
	// observations with examination stopping exactly at position t.
	wStop := make([]float64, n)
	var wSat float64

	if last >= 0 {
		sat := m.s(s.Query, s.Docs[last])
		wSat = sat
		cur := 1 - sat // unsatisfied, still deciding
		for t := last; t < n; t++ {
			if t > last {
				// Continue into t, which must then be skipped.
				cur *= g * (1 - m.a(s.Query, s.Docs[t]))
			}
			w := cur
			if t < n-1 {
				w *= 1 - g // explicit stop before the next position
			}
			wStop[t] = w
		}
	} else {
		cur := 1.0 // position 0 is always examined
		for t := 0; t < n; t++ {
			if t > 0 {
				cur *= g
			}
			cur0 := cur * (1 - m.a(s.Query, s.Docs[t]))
			cur = cur0
			w := cur0
			if t < n-1 {
				w *= 1 - g
			}
			wStop[t] = w
		}
	}

	z = wSat
	for _, w := range wStop {
		z += w
	}
	if z <= 0 {
		z = probEps
	}

	pSat = wSat / z
	// P(E_j = 1 | obs) for tail positions: examination reached j iff the
	// stop position t >= j (and the user was not satisfied).
	suffix := 0.0
	for j := n - 1; j > last; j-- {
		suffix += wStop[j]
		if j >= 0 {
			pExam[j] = suffix / z
		}
	}
	return pSat, pExam, z
}

// Fit implements Model via EM with exact tail enumeration.
func (m *DBN) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()

	m.AttrA = make(map[qd]float64)
	m.SatS = make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			k := qd{s.Query, d}
			m.AttrA[k] = m.PriorA
			m.SatS[k] = m.PriorS
		}
	}

	type acc struct{ num, den float64 }
	for iter := 0; iter < m.Iterations; iter++ {
		aAcc := make(map[qd]acc, len(m.AttrA))
		sAcc := make(map[qd]acc, len(m.SatS))
		var gNum, gDen float64

		for _, sess := range sessions {
			n := len(sess.Docs)
			last := sess.LastClick()

			// Certainly-examined prefix.
			for j := 0; j <= last; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ac := aAcc[k]
				ac.den++
				if sess.Clicks[j] {
					ac.num++
				}
				aAcc[k] = ac
				if sess.Clicks[j] && j < last {
					// Satisfied here is impossible: clicks follow.
					sc := sAcc[k]
					sc.den++
					sAcc[k] = sc
					// The continue decision was taken and succeeded.
					gNum++
					gDen++
				}
				if !sess.Clicks[j] && j < last {
					gNum++
					gDen++
				}
			}

			pSat, pExam, _ := m.tailPosterior(sess, last)

			if last >= 0 {
				k := qd{sess.Query, sess.Docs[last]}
				sc := sAcc[k]
				sc.num += pSat
				sc.den++
				sAcc[k] = sc
				if last < n-1 {
					// Unsatisfied users took a gamma decision here.
					gDen += 1 - pSat
					gNum += pExam[last+1]
				}
			}
			for j := last + 1; j < n; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ac := aAcc[k]
				ac.den += pExam[j]
				aAcc[k] = ac
				if j < n-1 {
					gDen += pExam[j]
					gNum += pExam[j+1]
				}
			}
		}

		for k, ac := range aAcc {
			if ac.den > 0 {
				m.AttrA[k] = clampProb(ac.num / ac.den)
			}
		}
		for k, sc := range sAcc {
			if sc.den > 0 {
				m.SatS[k] = clampProb(sc.num / sc.den)
			}
		}
		if gDen > 0 {
			m.Gamma = clampProb(gNum / gDen)
		}
	}
	return nil
}

// ClickProbs implements Model via the forward examination recursion.
func (m *DBN) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		a := m.a(s.Query, d)
		sat := m.s(s.Query, d)
		out[i] = exam * a
		exam *= m.Gamma * (a*(1-sat) + (1 - a))
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *DBN) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		a := m.a(s.Query, d)
		sat := m.s(s.Query, d)
		exam *= m.Gamma * (a*(1-sat) + (1 - a))
	}
	return out
}

// SessionLogLikelihood implements Model: exact likelihood with the
// certainly-examined prefix plus the marginalised tail.
func (m *DBN) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		a := m.a(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(a)
			if j < last {
				// Unsatisfied and continued.
				ll += log((1 - m.s(s.Query, s.Docs[j])) * m.Gamma)
			}
		} else {
			ll += log(1-a) + log(m.Gamma)
		}
	}
	_, _, z := m.tailPosterior(s, last)
	ll += log(z)
	return ll
}
