package clickmodel

import (
	"strings"
	"testing"
)

// taxonomyOrder is the paper's related-work order the built-ins must
// keep, because All() and reports iterate it.
var taxonomyOrder = []string{"pbm", "cascade", "dcm", "ubm", "bbm", "ccm", "dbn", "sdbn", "gcm", "sum"}

func TestRegistryNamesOrder(t *testing.T) {
	names := Names()
	if len(names) < len(taxonomyOrder) {
		t.Fatalf("Names() = %v, want at least the %d built-ins", names, len(taxonomyOrder))
	}
	for i, want := range taxonomyOrder {
		if names[i] != want {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want)
		}
	}
}

func TestRegistryNewKnown(t *testing.T) {
	for _, name := range taxonomyOrder {
		m, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := strings.ToLower(m.Name()); got != name {
			t.Errorf("New(%q).Name() = %q", name, m.Name())
		}
	}
	// Case-insensitive, whitespace-tolerant.
	if _, err := New(" PBM "); err != nil {
		t.Errorf("New(\" PBM \"): %v", err)
	}
}

func TestRegistryNewReturnsFreshInstances(t *testing.T) {
	a, _ := New("pbm")
	b, _ := New("pbm")
	if a == b {
		t.Fatal("New returned the same instance twice")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("nope")
	if err == nil {
		t.Fatal("New(\"nope\") succeeded")
	}
	if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "pbm") {
		t.Errorf("error should name the request and list choices: %v", err)
	}
	if _, err := Lookup(""); err == nil {
		t.Error("Lookup(\"\") succeeded")
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := map[string]func(){
		"empty name":  func() { Register("", func() Model { return NewPBM() }) },
		"nil factory": func() { Register("x-nil", nil) },
		"duplicate":   func() { Register("pbm", func() Model { return NewPBM() }) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAllMatchesRegistry(t *testing.T) {
	all := All()
	names := Names()
	if len(all) != len(names) {
		t.Fatalf("All() returned %d models, registry has %d", len(all), len(names))
	}
	for i, m := range all {
		if got := strings.ToLower(m.Name()); got != names[i] {
			t.Errorf("All()[%d].Name() = %q, want %q", i, m.Name(), names[i])
		}
	}
}
