package clickmodel

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/snapshot"
)

// v2Mapped round-trips a fitted model through a v2 artifact into its
// mapped serving view.
func v2Mapped(t *testing.T, m Model) Model {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveV2Model(&buf, m); err != nil {
		t.Fatalf("SaveV2Model: %v", err)
	}
	a, err := snapshot.ParseV2(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseV2: %v", err)
	}
	if err := a.VerifySections(); err != nil {
		t.Fatalf("VerifySections: %v", err)
	}
	mapped, err := MappedFromArtifact(a)
	if err != nil {
		t.Fatalf("MappedFromArtifact: %v", err)
	}
	return mapped
}

// TestV2MappedParity fits PBM and DBN, round-trips each through a v2
// artifact, and pins mapped-vs-map predictions (ClickProbs,
// SessionLogLikelihood, ExaminationProbs) to 1e-12 on held-out
// sessions including unseen queries and documents (the prior paths).
func TestV2MappedParity(t *testing.T) {
	train := snapSessions(303, 800, 6)
	eval := snapSessions(404, 80, 6)
	eval = append(eval,
		Session{Query: "novel query", Docs: []string{"zz", "yy", "xx"}, Clicks: []bool{true, false, false}},
		Session{Query: "flights", Docs: []string{"qq", "a", "rr"}, Clicks: []bool{false, true, false}},
		Session{Query: "hotels", Docs: []string{"solo"}, Clicks: []bool{false}},
	)

	for _, name := range []string{"PBM", "DBN"} {
		t.Run(name, func(t *testing.T) {
			fitted := fitFresh(t, name, train)
			mapped := v2Mapped(t, fitted)
			if mapped.Name() != fitted.Name() {
				t.Fatalf("mapped Name = %q, want %q", mapped.Name(), fitted.Name())
			}
			if got, want := ParamCount(mapped), ParamCount(fitted); got != want {
				t.Fatalf("ParamCount = %d, want %d", got, want)
			}
			var buf []float64
			for i, s := range eval {
				want := fitted.ClickProbs(s)
				buf = mapped.(InplaceScorer).ClickProbsInto(s, buf)
				if len(buf) != len(want) {
					t.Fatalf("session %d: %d probs, want %d", i, len(buf), len(want))
				}
				for j := range want {
					if math.Abs(buf[j]-want[j]) > 1e-12 {
						t.Fatalf("session %d pos %d: mapped %v, map %v", i, j, buf[j], want[j])
					}
				}
				if a, b := fitted.SessionLogLikelihood(s), mapped.SessionLogLikelihood(s); math.Abs(a-b) > 1e-12 {
					t.Fatalf("session %d: LL map %v, mapped %v", i, a, b)
				}
				we := fitted.(Examiner).ExaminationProbs(s)
				ge := mapped.(Examiner).ExaminationProbs(s)
				for j := range we {
					if math.Abs(we[j]-ge[j]) > 1e-12 {
						t.Fatalf("session %d pos %d: exam map %v, mapped %v", j, i, we[j], ge[j])
					}
				}
			}
		})
	}
}

// TestV2MappedReExport round-trips mapped → Save → mapped again and
// checks predictions are preserved (the replica-sync path re-exports
// from a mapping).
func TestV2MappedReExport(t *testing.T) {
	train := snapSessions(505, 400, 5)
	eval := snapSessions(606, 30, 5)
	for _, name := range []string{"PBM", "DBN"} {
		fitted := fitFresh(t, name, train)
		mapped := v2Mapped(t, fitted)
		again := v2Mapped(t, mapped)
		for _, s := range eval {
			a := mapped.ClickProbs(s)
			b := again.ClickProbs(s)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: re-exported artifact diverges at pos %d: %v vs %v", name, j, a[j], b[j])
				}
			}
		}
	}
}

func TestV2MappedImmutable(t *testing.T) {
	fitted := fitFresh(t, "PBM", snapSessions(1, 100, 4))
	mapped := v2Mapped(t, fitted)
	if err := mapped.Fit(nil); !errors.Is(err, ErrMappedImmutable) {
		t.Fatalf("Fit err = %v, want ErrMappedImmutable", err)
	}
	if err := mapped.(Snapshotter).Load(bytes.NewReader(nil)); !errors.Is(err, ErrMappedImmutable) {
		t.Fatalf("Load err = %v, want ErrMappedImmutable", err)
	}
}

func TestV2MappedZeroAllocScore(t *testing.T) {
	fitted := fitFresh(t, "PBM", snapSessions(2, 300, 5))
	mapped := v2Mapped(t, fitted).(*MappedPBM)
	s := Session{Query: "flights", Docs: []string{"d1", "d2", "d3", "d4"}, Clicks: make([]bool, 4)}
	buf := make([]float64, 4)
	allocs := testing.AllocsPerRun(200, func() {
		buf = mapped.ClickProbsInto(s, buf)
	})
	if allocs != 0 {
		t.Fatalf("mapped ClickProbsInto allocates %v/op, want 0", allocs)
	}
}

func TestSaveV2ModelUnsupported(t *testing.T) {
	fitted := fitFresh(t, "UBM", snapSessions(3, 100, 4))
	var buf bytes.Buffer
	if err := SaveV2Model(&buf, fitted); err == nil {
		t.Fatal("SaveV2Model accepted a model with no v2 codec")
	}
}

func TestV2MappedRejectsCorruptPairs(t *testing.T) {
	fitted := fitFresh(t, "DBN", snapSessions(4, 200, 5))
	var buf bytes.Buffer
	if err := SaveV2Model(&buf, fitted); err != nil {
		t.Fatal(err)
	}
	orig, err := snapshot.ParseV2(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the artifact with one section dropped or mangled; the
	// loader must fail closed.
	rebuild := func(mangle func(tag string, w *snapshot.V2Writer, a *snapshot.V2Artifact) bool) ([]byte, error) {
		w := snapshot.NewV2Writer("DBN")
		for _, s := range orig.Sections {
			if mangle(s.Tag, w, orig) {
				continue
			}
			switch s.Kind {
			case snapshot.V2Float64:
				f, _ := orig.FloatsView(s.Tag)
				w.Floats(s.Tag, f)
			case snapshot.V2Int32:
				v, _ := orig.Int32sView(s.Tag)
				w.Int32s(s.Tag, v)
			case snapshot.V2Uint32:
				u, _ := orig.Uint32sView(s.Tag)
				w.Uint32s(s.Tag, u)
			default:
				b, _ := orig.BytesView(s.Tag)
				w.Bytes(s.Tag, b)
			}
		}
		var out bytes.Buffer
		if _, err := w.WriteTo(&out); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	}

	for _, drop := range []string{"meta", "q.blob", "p.q", "p.tabl", "a.vals", "s.vals"} {
		b, err := rebuild(func(tag string, w *snapshot.V2Writer, a *snapshot.V2Artifact) bool { return tag == drop })
		if err != nil {
			t.Fatal(err)
		}
		a, err := snapshot.ParseV2(b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := MappedFromArtifact(a); err == nil {
			t.Errorf("accepted an artifact missing %q", drop)
		}
	}

	// Truncated value array (fewer values than pairs).
	b, err := rebuild(func(tag string, w *snapshot.V2Writer, a *snapshot.V2Artifact) bool {
		if tag == "a.vals" {
			f, _ := a.FloatsView(tag)
			w.Floats(tag, f[:len(f)/2])
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := snapshot.ParseV2(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MappedFromArtifact(a); err == nil {
		t.Error("accepted a value array shorter than the pair table")
	}

	// Pair IDs out of vocabulary range: the constructor stays O(1) in
	// artifact size, so this corruption is NOT caught at wrap time — it
	// must build, score without panicking (the probe loop degrades to
	// misses), and fail the deep scan verified loads run before install.
	b, err = rebuild(func(tag string, w *snapshot.V2Writer, a *snapshot.V2Artifact) bool {
		if tag == "p.q" {
			v, _ := a.Int32sView(tag)
			bad := append([]int32(nil), v...)
			bad[0] = 1 << 30
			w.Int32s(tag, bad)
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err = snapshot.ParseV2(b)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MappedFromArtifact(a)
	if err != nil {
		t.Fatalf("O(1) constructor rejected deferred-validation corruption: %v", err)
	}
	if probs := m.ClickProbs(Session{Query: "q0", Docs: []string{"d0", "d1"}}); len(probs) != 2 {
		t.Fatalf("corrupt-table scoring returned %d probs, want 2", len(probs))
	}
	dv, ok := m.(interface{ ValidateTables() error })
	if !ok {
		t.Fatalf("mapped model %T lacks ValidateTables", m)
	}
	if err := dv.ValidateTables(); err == nil {
		t.Error("deep validation accepted out-of-range pair IDs")
	}
}

var (
	_ Model         = (*MappedPBM)(nil)
	_ InplaceScorer = (*MappedPBM)(nil)
	_ Examiner      = (*MappedPBM)(nil)
	_ Snapshotter   = (*MappedPBM)(nil)
	_ Model         = (*MappedDBN)(nil)
	_ InplaceScorer = (*MappedDBN)(nil)
	_ Examiner      = (*MappedDBN)(nil)
	_ Snapshotter   = (*MappedDBN)(nil)
)
