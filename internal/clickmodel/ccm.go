package clickmodel

// CCM is the click chain model of Guo et al., generalising DCM with an
// abandonment option and relevance-dependent continuation:
//
//	P(E_{i+1} = 1 | E_i = 1, C_i = 0) = alpha1
//	P(E_{i+1} = 1 | E_i = 1, C_i = 1) = alpha2·(1 - r_i) + alpha3·r_i
//	P(C_i = 1 | E_i = 1)              = r(q, d_i)
//
// The original paper performs Bayesian inference over r; this
// reproduction estimates point relevances and the three alphas with an
// EM that enumerates the latent stop position exactly (as in DBN) and
// updates alpha2/alpha3 by relevance-weighted moment matching, a standard
// approximation when relevance is a point estimate rather than a random
// variable.
type CCM struct {
	Rel                    map[qd]float64
	Alpha1, Alpha2, Alpha3 float64

	Iterations int
	PriorR     float64
}

// NewCCM returns a CCM with default hyper-parameters.
func NewCCM() *CCM {
	return &CCM{Iterations: 20, PriorR: 0.5, Alpha1: 0.8, Alpha2: 0.6, Alpha3: 0.9}
}

// Name implements Model.
func (m *CCM) Name() string { return "CCM" }

func (m *CCM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorR <= 0 || m.PriorR >= 1 {
		m.PriorR = 0.5
	}
	if m.Alpha1 <= 0 || m.Alpha1 >= 1 {
		m.Alpha1 = 0.8
	}
	if m.Alpha2 <= 0 || m.Alpha2 >= 1 {
		m.Alpha2 = 0.6
	}
	if m.Alpha3 <= 0 || m.Alpha3 >= 1 {
		m.Alpha3 = 0.9
	}
}

func (m *CCM) r(q, d string) float64 {
	if v, ok := m.Rel[qd{q, d}]; ok {
		return v
	}
	return m.PriorR
}

// contClick is the continuation probability after a click on a result
// with relevance r.
func (m *CCM) contClick(r float64) float64 {
	return m.Alpha2*(1-r) + m.Alpha3*r
}

// tailPosterior mirrors DBN.tailPosterior for CCM's transition structure:
// after the last click the user continues with contClick(r_last), then
// keeps examining skipped results with alpha1 per step.
func (m *CCM) tailPosterior(s Session, last int) (pCont float64, pExam []float64, z float64) {
	n := len(s.Docs)
	pExam = make([]float64, n)
	wStop := make([]float64, n)

	if last >= 0 {
		cont := m.contClick(m.r(s.Query, s.Docs[last]))
		cur := 1.0
		for t := last; t < n; t++ {
			if t > last {
				step := m.Alpha1
				if t == last+1 {
					step = cont
				}
				cur *= step * (1 - m.r(s.Query, s.Docs[t]))
			}
			w := cur
			if t < n-1 {
				stop := 1 - m.Alpha1
				if t == last {
					stop = 1 - cont
				}
				w *= stop
			}
			wStop[t] = w
		}
	} else {
		cur := 1.0
		for t := 0; t < n; t++ {
			if t > 0 {
				cur *= m.Alpha1
			}
			cur *= 1 - m.r(s.Query, s.Docs[t])
			w := cur
			if t < n-1 {
				w *= 1 - m.Alpha1
			}
			wStop[t] = w
		}
	}

	for _, w := range wStop {
		z += w
	}
	if z <= 0 {
		z = probEps
	}
	suffix := 0.0
	for j := n - 1; j > last; j-- {
		suffix += wStop[j]
		pExam[j] = suffix / z
	}
	if last >= 0 && last < n-1 {
		pCont = pExam[last+1]
	}
	return pCont, pExam, z
}

// Fit implements Model.
func (m *CCM) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	m.Rel = make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			m.Rel[qd{s.Query, d}] = m.PriorR
		}
	}

	type acc struct{ num, den float64 }
	for iter := 0; iter < m.Iterations; iter++ {
		rAcc := make(map[qd]acc, len(m.Rel))
		var a1Num, a1Den float64
		var a2Num, a2Den, a3Num, a3Den float64

		for _, sess := range sessions {
			n := len(sess.Docs)
			last := sess.LastClick()

			for j := 0; j <= last; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den++
				if sess.Clicks[j] {
					ra.num++
				}
				rAcc[k] = ra
				if j < last {
					if sess.Clicks[j] {
						// Continued after a click: relevance-weighted
						// credit to alpha2/alpha3.
						r := m.r(sess.Query, sess.Docs[j])
						a2Den += 1 - r
						a2Num += 1 - r
						a3Den += r
						a3Num += r
					} else {
						a1Den++
						a1Num++
					}
				}
			}

			pCont, pExam, _ := m.tailPosterior(sess, last)

			if last >= 0 && last < n-1 {
				r := m.r(sess.Query, sess.Docs[last])
				a2Den += 1 - r
				a2Num += (1 - r) * pCont
				a3Den += r
				a3Num += r * pCont
			}
			for j := last + 1; j < n; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den += pExam[j]
				rAcc[k] = ra
				if j < n-1 {
					a1Den += pExam[j]
					a1Num += pExam[j+1]
				}
			}
		}

		for k, ra := range rAcc {
			if ra.den > 0 {
				m.Rel[k] = clampProb(ra.num / ra.den)
			}
		}
		if a1Den > 0 {
			m.Alpha1 = clampProb(a1Num / a1Den)
		}
		if a2Den > 0 {
			m.Alpha2 = clampProb(a2Num / a2Den)
		}
		if a3Den > 0 {
			m.Alpha3 = clampProb(a3Num / a3Den)
		}
	}
	return nil
}

// ClickProbs implements Model via the forward examination recursion.
func (m *CCM) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		r := m.r(s.Query, d)
		out[i] = exam * r
		exam *= r*m.contClick(r) + (1-r)*m.Alpha1
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *CCM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		r := m.r(s.Query, d)
		exam *= r*m.contClick(r) + (1-r)*m.Alpha1
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *CCM) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		r := m.r(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(r)
			if j < last {
				ll += log(m.contClick(r))
			}
		} else {
			ll += log(1-r) + log(m.Alpha1)
		}
	}
	_, _, z := m.tailPosterior(s, last)
	ll += log(z)
	return ll
}
