package clickmodel

// CCM is the click chain model of Guo et al., generalising DCM with an
// abandonment option and relevance-dependent continuation:
//
//	P(E_{i+1} = 1 | E_i = 1, C_i = 0) = alpha1
//	P(E_{i+1} = 1 | E_i = 1, C_i = 1) = alpha2·(1 - r_i) + alpha3·r_i
//	P(C_i = 1 | E_i = 1)              = r(q, d_i)
//
// The original paper performs Bayesian inference over r; this
// reproduction estimates point relevances and the three alphas with an
// EM that enumerates the latent stop position exactly (as in DBN) and
// updates alpha2/alpha3 by relevance-weighted moment matching, a standard
// approximation when relevance is a point estimate rather than a random
// variable. The EM runs over the compiled log with per-worker scratch.
type CCM struct {
	Rel                    map[qd]float64
	Alpha1, Alpha2, Alpha3 float64

	Iterations int
	PriorR     float64
	// Workers caps the parallel E-step fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewCCM returns a CCM with default hyper-parameters.
func NewCCM() *CCM {
	return &CCM{Iterations: 20, PriorR: 0.5, Alpha1: 0.8, Alpha2: 0.6, Alpha3: 0.9}
}

// Name implements Model.
func (m *CCM) Name() string { return "CCM" }

// SetIterations implements IterativeModel.
func (m *CCM) SetIterations(n int) { m.Iterations = n }

func (m *CCM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorR <= 0 || m.PriorR >= 1 {
		m.PriorR = 0.5
	}
	if m.Alpha1 <= 0 || m.Alpha1 >= 1 {
		m.Alpha1 = 0.8
	}
	if m.Alpha2 <= 0 || m.Alpha2 >= 1 {
		m.Alpha2 = 0.6
	}
	if m.Alpha3 <= 0 || m.Alpha3 >= 1 {
		m.Alpha3 = 0.9
	}
}

func (m *CCM) r(q, d string) float64 {
	if v, ok := m.Rel[qd{q, d}]; ok {
		return v
	}
	return m.PriorR
}

// contClick is the continuation probability after a click on a result
// with relevance r.
func (m *CCM) contClick(r float64) float64 {
	return m.Alpha2*(1-r) + m.Alpha3*r
}

// tailPosterior mirrors DBN.tailPosterior for CCM's transition structure:
// after the last click the user continues with contClick(r_last), then
// keeps examining skipped results with alpha1 per step. This
// Session-based form serves SessionLogLikelihood; the compiled E-step
// inlines the same enumeration over worker-owned scratch.
func (m *CCM) tailPosterior(s Session, last int) (pCont float64, pExam []float64, z float64) {
	n := len(s.Docs)
	pExam = make([]float64, n)
	wStop := make([]float64, n)

	if last >= 0 {
		cont := m.contClick(m.r(s.Query, s.Docs[last]))
		cur := 1.0
		for t := last; t < n; t++ {
			if t > last {
				step := m.Alpha1
				if t == last+1 {
					step = cont
				}
				cur *= step * (1 - m.r(s.Query, s.Docs[t]))
			}
			w := cur
			if t < n-1 {
				stop := 1 - m.Alpha1
				if t == last {
					stop = 1 - cont
				}
				w *= stop
			}
			wStop[t] = w
		}
	} else {
		cur := 1.0
		for t := 0; t < n; t++ {
			if t > 0 {
				cur *= m.Alpha1
			}
			cur *= 1 - m.r(s.Query, s.Docs[t])
			w := cur
			if t < n-1 {
				w *= 1 - m.Alpha1
			}
			wStop[t] = w
		}
	}

	for _, w := range wStop {
		z += w
	}
	if z <= 0 {
		z = probEps
	}
	suffix := 0.0
	for j := n - 1; j > last; j-- {
		suffix += wStop[j]
		pExam[j] = suffix / z
	}
	if last >= 0 && last < n-1 {
		pCont = pExam[last+1]
	}
	return pCont, pExam, z
}

// Fit implements Model: compile the log, then run the dense EM.
func (m *CCM) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// ccmAccStride is one worker's accumulator layout:
// [rNum | rDen | a1Num a1Den a2Num a2Den a3Num a3Den].
func ccmAccStride(nPair int) int { return 2*nPair + 6 }

// FitLog runs EM over a compiled log.
func (m *CCM) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	nPair := c.NumPairs()
	stride := ccmAccStride(nPair)
	workers := emWorkers(m.Workers, c.NumSessions())

	fs, buf := getScratch(nPair + workers*(stride+2*c.maxPos))
	defer putScratch(fs)
	sl := slab{buf}
	rel := sl.take(nPair)
	for p := range rel {
		rel[p] = m.PriorR
	}
	accAll := sl.take(workers * stride)
	tails := sl.take(workers * 2 * c.maxPos)

	nSess := c.NumSessions()
	for iter := 0; iter < m.Iterations; iter++ {
		if iter > 0 {
			clear(accAll)
		}
		a1, a2, a3 := m.Alpha1, m.Alpha2, m.Alpha3
		if workers == 1 {
			ccmEStep(c, rel, a1, a2, a3, accAll[:stride], tails, 0, nSess)
		} else {
			forEachShard(workers, nSess, func(w, lo, hi int) {
				ccmEStep(c, rel, a1, a2, a3,
					accAll[w*stride:(w+1)*stride],
					tails[w*2*c.maxPos:(w+1)*2*c.maxPos], lo, hi)
			})
		}
		acc := mergeShards(accAll, stride, workers)
		rNum := acc[:nPair]
		rDen := acc[nPair : 2*nPair]
		sc := acc[2*nPair:]

		for p := 0; p < nPair; p++ {
			if rDen[p] > 0 {
				rel[p] = clampProb(rNum[p] / rDen[p])
			}
		}
		if sc[1] > 0 {
			m.Alpha1 = clampProb(sc[0] / sc[1])
		}
		if sc[3] > 0 {
			m.Alpha2 = clampProb(sc[2] / sc[3])
		}
		if sc[5] > 0 {
			m.Alpha3 = clampProb(sc[4] / sc[5])
		}
	}

	m.Rel = c.materializeInto(m.Rel, rel)
	return nil
}

// ccmEStep accumulates one worker's posteriors for the sessions
// [lo, hi). acc is laid out as ccmAccStride describes; tails provides
// the wStop/pExam scratch.
func ccmEStep(c *CompiledLog, rel []float64, a1, a2, a3 float64, acc, tails []float64, lo, hi int) {
	nPair := len(rel)
	rNum := acc[:nPair]
	rDen := acc[nPair : 2*nPair]
	sc := acc[2*nPair:] // a1Num a1Den a2Num a2Den a3Num a3Den
	wStop := tails[:len(tails)/2]
	pExam := tails[len(tails)/2:]

	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		n := int(e - b)
		last := int(c.last[s])

		for j := 0; j <= last; j++ {
			p := c.pair[b+int32(j)]
			rDen[p]++
			if c.click[b+int32(j)] {
				rNum[p]++
			}
			if j < last {
				if c.click[b+int32(j)] {
					// Continued after a click: relevance-weighted
					// credit to alpha2/alpha3.
					r := rel[p]
					sc[3] += 1 - r
					sc[2] += 1 - r
					sc[5] += r
					sc[4] += r
				} else {
					sc[1]++
					sc[0]++
				}
			}
		}

		// Tail posterior: enumerate the latent stop position.
		if last >= 0 {
			rLast := rel[c.pair[b+int32(last)]]
			cont := a2*(1-rLast) + a3*rLast
			cur := 1.0
			for t := last; t < n; t++ {
				if t > last {
					step := a1
					if t == last+1 {
						step = cont
					}
					cur *= step * (1 - rel[c.pair[b+int32(t)]])
				}
				w := cur
				if t < n-1 {
					stop := 1 - a1
					if t == last {
						stop = 1 - cont
					}
					w *= stop
				}
				wStop[t] = w
			}
		} else {
			cur := 1.0
			for t := 0; t < n; t++ {
				if t > 0 {
					cur *= a1
				}
				cur *= 1 - rel[c.pair[b+int32(t)]]
				w := cur
				if t < n-1 {
					w *= 1 - a1
				}
				wStop[t] = w
			}
		}
		var z float64
		start := last
		if start < 0 {
			start = 0
		}
		for t := start; t < n; t++ {
			z += wStop[t]
		}
		if z <= 0 {
			z = probEps
		}
		suffix := 0.0
		for j := n - 1; j > last; j-- {
			suffix += wStop[j]
			pExam[j] = suffix / z
		}
		var pCont float64
		if last >= 0 && last < n-1 {
			pCont = pExam[last+1]
		}

		if last >= 0 && last < n-1 {
			r := rel[c.pair[b+int32(last)]]
			sc[3] += 1 - r
			sc[2] += (1 - r) * pCont
			sc[5] += r
			sc[4] += r * pCont
		}
		for j := last + 1; j < n; j++ {
			p := c.pair[b+int32(j)]
			rDen[p] += pExam[j]
			if j < n-1 {
				sc[1] += pExam[j]
				sc[0] += pExam[j+1]
			}
		}
	}
}

// ClickProbs implements Model via the forward examination recursion.
func (m *CCM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *CCM) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		r := m.r(s.Query, d)
		out[i] = exam * r
		exam *= r*m.contClick(r) + (1-r)*m.Alpha1
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *CCM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		r := m.r(s.Query, d)
		exam *= r*m.contClick(r) + (1-r)*m.Alpha1
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *CCM) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for j := 0; j <= last; j++ {
		r := m.r(s.Query, s.Docs[j])
		if s.Clicks[j] {
			ll += log(r)
			if j < last {
				ll += log(m.contClick(r))
			}
		} else {
			ll += log(1-r) + log(m.Alpha1)
		}
	}
	_, _, z := m.tailPosterior(s, last)
	ll += log(z)
	return ll
}
