package clickmodel

// UBM is the user browsing model of Dupret & Piwowarski. Examination of
// position i depends on the position itself and on the position of the
// most recent preceding click:
//
//	P(E_i = 1 | last click at j) = gamma(i, j)
//	P(C_i = 1 | E_i = 1)         = alpha(q, d_i)
//
// Unlike the cascade family, a skip does not force continued examination:
// the user may abandon the list and reformulate. Because the conditioning
// click history is fully observed, EM reduces to PBM-style posterior
// updates with the gamma cell selected by the session's click pattern.
// The fit runs over the compiled log's flat triangular layout; the
// previous-click columns are precomputed at Compile.
type UBM struct {
	// Gamma[i][j] is P(E=1) at position i+1 when the previous click was
	// at position j (1-based), with j = 0 meaning no previous click.
	// Valid cells have j <= i. After a fit the rows share one backing
	// array (they remain disjoint slices).
	Gamma [][]float64
	Alpha map[qd]float64

	Iterations int
	PriorAlpha float64
	// Workers caps the parallel E-step fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewUBM returns a UBM with default hyper-parameters.
func NewUBM() *UBM { return &UBM{Iterations: 20, PriorAlpha: 0.5} }

// Name implements Model.
func (m *UBM) Name() string { return "UBM" }

// SetIterations implements IterativeModel.
func (m *UBM) SetIterations(n int) { m.Iterations = n }

func (m *UBM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
}

func (m *UBM) gamma(i, j int) float64 {
	if i < len(m.Gamma) && j < len(m.Gamma[i]) {
		return m.Gamma[i][j]
	}
	return 0.5
}

// prevClickIndex returns, for each position of the session, the gamma
// column: 0 when no click precedes it, otherwise the 1-based position of
// the most recent preceding click. (Compile precomputes the same
// columns for every impression of a log.)
func prevClickIndex(s Session) []int {
	idx := make([]int, len(s.Docs))
	prev := 0
	for i := range s.Docs {
		idx[i] = prev
		if s.Clicks[i] {
			prev = i + 1
		}
	}
	return idx
}

// Fit implements Model: compile the log, then run the dense EM.
func (m *UBM) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// FitLog runs EM over a compiled log. The triangular gamma table is
// kept flat (cell (i, j) at tri(i)+j); its denominators — impressions
// per (position, previous-click) cell — are log constants cached on
// the CompiledLog, as are the per-pair alpha denominators.
func (m *UBM) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	n := c.maxPos
	nPair := c.NumPairs()
	nCell := tri(n)
	workers := emWorkers(m.Workers, c.NumSessions())
	cellCount := c.ubmCellCounts()

	fs, buf := getScratch(nCell + nPair + workers*(nCell+nPair))
	defer putScratch(fs)
	sl := slab{buf}
	gamma := sl.take(nCell)
	for i := 0; i < n; i++ {
		row := gamma[tri(i) : tri(i)+i+1]
		for j := range row {
			row[j] = 1.0 / (1.0 + float64(i-j))
		}
	}
	alpha := sl.take(nPair)
	for p := range alpha {
		alpha[p] = m.PriorAlpha
	}
	gAll := sl.take(workers * nCell)
	aAll := sl.take(workers * nPair)

	nSess := c.NumSessions()
	for iter := 0; iter < m.Iterations; iter++ {
		if iter > 0 {
			clear(gAll)
			clear(aAll)
		}
		if workers == 1 {
			ubmEStep(c, gamma, alpha, gAll, aAll, 0, nSess)
		} else {
			forEachShard(workers, nSess, func(w, lo, hi int) {
				ubmEStep(c, gamma, alpha,
					gAll[w*nCell:(w+1)*nCell], aAll[w*nPair:(w+1)*nPair], lo, hi)
			})
		}
		gNum := mergeShards(gAll, nCell, workers)
		aNum := mergeShards(aAll, nPair, workers)

		for t := 0; t < nCell; t++ {
			if cellCount[t] > 0 {
				gamma[t] = clampProb(gNum[t] / cellCount[t])
			}
		}
		for p := 0; p < nPair; p++ {
			if c.pairCount[p] > 0 {
				alpha[p] = clampProb(aNum[p] / c.pairCount[p])
			}
		}
	}

	// Materialize the exported triangular table from one backing copy,
	// reusing the previous fit's rows when they have the right shape.
	if gammaShapeOK(m.Gamma, n) {
		for i := 0; i < n; i++ {
			copy(m.Gamma[i], gamma[tri(i):tri(i)+i+1])
		}
	} else {
		flat := make([]float64, nCell)
		copy(flat, gamma)
		m.Gamma = make([][]float64, n)
		for i := 0; i < n; i++ {
			m.Gamma[i] = flat[tri(i) : tri(i)+i+1 : tri(i)+i+1]
		}
	}
	m.Alpha = c.materializeInto(m.Alpha, alpha)
	return nil
}

// gammaShapeOK reports whether an existing triangular table has
// exactly n rows of lengths 1..n and can be refilled in place.
func gammaShapeOK(g [][]float64, n int) bool {
	if len(g) != n {
		return false
	}
	for i := range g {
		if len(g[i]) != i+1 {
			return false
		}
	}
	return true
}

// ubmEStep accumulates posteriors for sessions [lo, hi) into one
// worker's gNum (triangular cells) and aNum (pairs) regions.
func ubmEStep(c *CompiledLog, gamma, alpha, gNum, aNum []float64, lo, hi int) {
	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		for i := b; i < e; i++ {
			pos := int(i - b)
			cell := tri(pos) + int(c.prev[i])
			p := c.pair[i]
			a := alpha[p]
			g := gamma[cell]
			if c.click[i] {
				gNum[cell]++
				aNum[p]++
			} else {
				den := clampProb(1 - a*g)
				gNum[cell] += g * (1 - a) / den
				aNum[p] += a * (1 - g) / den
			}
		}
	}
}

func (m *UBM) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

// ClickProbs implements Model. The marginal click probability requires
// integrating over the unobserved click history; a forward recursion over
// the "position of the last click so far" does this exactly in O(n²).
func (m *UBM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer. For typical SERP depths the
// forward recursion's state lives on the stack, so scoring into a
// reused buffer is allocation-free.
func (m *UBM) ClickProbsInto(s Session, buf []float64) []float64 {
	n := len(s.Docs)
	out := resizeProbs(buf, n)
	var stack [maxStackPositions + 1]float64
	pLast := stack[:]
	if n+1 > len(stack) {
		pLast = make([]float64, n+1)
	}
	// pLast[j]: probability that after processing positions < i, the most
	// recent click was at position j (1-based), j = 0 for none. The rest
	// of pLast is zero already: fresh stack array or make().
	pLast[0] = 1
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		var pc float64
		for j := 0; j <= i; j++ {
			pc += pLast[j] * a * m.gamma(i, j)
		}
		out[i] = pc
		for j := 0; j <= i; j++ {
			pLast[j] *= 1 - a*m.gamma(i, j)
		}
		pLast[i+1] = pc
	}
	return out
}

// ExaminationProbs implements Examiner, marginalising over click
// histories with the same forward recursion.
func (m *UBM) ExaminationProbs(s Session) []float64 {
	n := len(s.Docs)
	out := make([]float64, n)
	pLast := make([]float64, n+1)
	pLast[0] = 1
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		var pe, pc float64
		for j := 0; j <= i; j++ {
			g := m.gamma(i, j)
			pe += pLast[j] * g
			pc += pLast[j] * a * g
		}
		out[i] = pe
		for j := 0; j <= i; j++ {
			pLast[j] *= 1 - a*m.gamma(i, j)
		}
		pLast[i+1] = pc
	}
	return out
}

// SessionLogLikelihood implements Model. Conditioned on the observed
// click history the session likelihood factorises position by position.
func (m *UBM) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	prev := 0
	for i, d := range s.Docs {
		p := m.alpha(s.Query, d) * m.gamma(i, prev)
		ll += bernoulliLL(p, s.Clicks[i])
		if s.Clicks[i] {
			prev = i + 1
		}
	}
	return ll
}
