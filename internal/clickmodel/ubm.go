package clickmodel

// UBM is the user browsing model of Dupret & Piwowarski. Examination of
// position i depends on the position itself and on the position of the
// most recent preceding click:
//
//	P(E_i = 1 | last click at j) = gamma(i, j)
//	P(C_i = 1 | E_i = 1)         = alpha(q, d_i)
//
// Unlike the cascade family, a skip does not force continued examination:
// the user may abandon the list and reformulate. Because the conditioning
// click history is fully observed, EM reduces to PBM-style posterior
// updates with the gamma cell selected by the session's click pattern.
type UBM struct {
	// Gamma[i][j] is P(E=1) at position i+1 when the previous click was
	// at position j (1-based), with j = 0 meaning no previous click.
	// Valid cells have j <= i.
	Gamma [][]float64
	Alpha map[qd]float64

	Iterations int
	PriorAlpha float64
}

// NewUBM returns a UBM with default hyper-parameters.
func NewUBM() *UBM { return &UBM{Iterations: 20, PriorAlpha: 0.5} }

// Name implements Model.
func (m *UBM) Name() string { return "UBM" }

func (m *UBM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
}

func (m *UBM) gamma(i, j int) float64 {
	if i < len(m.Gamma) && j < len(m.Gamma[i]) {
		return m.Gamma[i][j]
	}
	return 0.5
}

// prevClickIndex returns, for each position of the session, the gamma
// column: 0 when no click precedes it, otherwise the 1-based position of
// the most recent preceding click.
func prevClickIndex(s Session) []int {
	idx := make([]int, len(s.Docs))
	prev := 0
	for i := range s.Docs {
		idx[i] = prev
		if s.Clicks[i] {
			prev = i + 1
		}
	}
	return idx
}

// Fit implements Model via EM.
func (m *UBM) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	n := maxPositions(sessions)

	m.Gamma = make([][]float64, n)
	for i := range m.Gamma {
		m.Gamma[i] = make([]float64, i+1)
		for j := range m.Gamma[i] {
			m.Gamma[i][j] = 1.0 / (1.0 + float64(i-j))
		}
	}
	m.Alpha = make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			m.Alpha[qd{s.Query, d}] = m.PriorAlpha
		}
	}

	type acc struct{ num, den float64 }
	for iter := 0; iter < m.Iterations; iter++ {
		gNum := make([][]float64, n)
		gDen := make([][]float64, n)
		for i := range gNum {
			gNum[i] = make([]float64, i+1)
			gDen[i] = make([]float64, i+1)
		}
		aAcc := make(map[qd]acc, len(m.Alpha))

		for _, s := range sessions {
			prev := prevClickIndex(s)
			for i, d := range s.Docs {
				k := qd{s.Query, d}
				a := m.Alpha[k]
				g := m.gamma(i, prev[i])
				var postE, postA float64
				if s.Clicks[i] {
					postE, postA = 1, 1
				} else {
					den := clampProb(1 - a*g)
					postE = g * (1 - a) / den
					postA = a * (1 - g) / den
				}
				gNum[i][prev[i]] += postE
				gDen[i][prev[i]]++
				ac := aAcc[k]
				ac.num += postA
				ac.den++
				aAcc[k] = ac
			}
		}

		for i := range m.Gamma {
			for j := range m.Gamma[i] {
				if gDen[i][j] > 0 {
					m.Gamma[i][j] = clampProb(gNum[i][j] / gDen[i][j])
				}
			}
		}
		for k, ac := range aAcc {
			if ac.den > 0 {
				m.Alpha[k] = clampProb(ac.num / ac.den)
			}
		}
	}
	return nil
}

func (m *UBM) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

// ClickProbs implements Model. The marginal click probability requires
// integrating over the unobserved click history; a forward recursion over
// the "position of the last click so far" does this exactly in O(n²).
func (m *UBM) ClickProbs(s Session) []float64 {
	n := len(s.Docs)
	out := make([]float64, n)
	// pLast[j]: probability that after processing positions < i, the most
	// recent click was at position j (1-based), j = 0 for none.
	pLast := make([]float64, n+1)
	pLast[0] = 1
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		var pc float64
		for j := 0; j <= i; j++ {
			pc += pLast[j] * a * m.gamma(i, j)
		}
		out[i] = pc
		for j := 0; j <= i; j++ {
			pLast[j] *= 1 - a*m.gamma(i, j)
		}
		pLast[i+1] = pc
	}
	return out
}

// ExaminationProbs implements Examiner, marginalising over click
// histories with the same forward recursion.
func (m *UBM) ExaminationProbs(s Session) []float64 {
	n := len(s.Docs)
	out := make([]float64, n)
	pLast := make([]float64, n+1)
	pLast[0] = 1
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		var pe, pc float64
		for j := 0; j <= i; j++ {
			g := m.gamma(i, j)
			pe += pLast[j] * g
			pc += pLast[j] * a * g
		}
		out[i] = pe
		for j := 0; j <= i; j++ {
			pLast[j] *= 1 - a*m.gamma(i, j)
		}
		pLast[i+1] = pc
	}
	return out
}

// SessionLogLikelihood implements Model. Conditioned on the observed
// click history the session likelihood factorises position by position.
func (m *UBM) SessionLogLikelihood(s Session) float64 {
	prev := prevClickIndex(s)
	ll := 0.0
	for i, d := range s.Docs {
		p := m.alpha(s.Query, d) * m.gamma(i, prev[i])
		ll += bernoulliLL(p, s.Clicks[i])
	}
	return ll
}
