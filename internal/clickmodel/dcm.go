package clickmodel

// DCM is the dependent click model of Guo et al., the multi-click
// generalisation of the cascade model:
//
//	P(E_i = 1 | E_{i-1} = 1, C_{i-1} = 1) = lambda_{i-1}
//	P(E_i = 1 | E_{i-1} = 1, C_{i-1} = 0) = 1
//	P(C_i = 1 | E_i = 1)                  = alpha(q, d_i)
//
// After a click at position i the user continues with the position effect
// lambda_i; after a skip she always continues. Estimation follows the
// original paper's maximum-likelihood recipe: positions up to the last
// click are certainly examined; lambda_i is one minus the fraction of
// clicks at position i that were the session's last click. The count
// pass runs over the compiled log, sharded like the EM models' E-steps.
type DCM struct {
	Alpha  map[qd]float64
	Lambda []float64 // Lambda[i]: continue probability after a click at position i+1

	PriorAlpha         float64
	LaplaceA, LaplaceB float64
	// Workers caps the parallel counting fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewDCM returns a DCM with default smoothing.
func NewDCM() *DCM { return &DCM{PriorAlpha: 0.5, LaplaceA: 1, LaplaceB: 2} }

// Name implements Model.
func (m *DCM) Name() string { return "DCM" }

func (m *DCM) defaults() {
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
	if m.LaplaceA < 0 || m.LaplaceB < 0 {
		m.LaplaceA, m.LaplaceB = 1, 2
	}
}

// Fit implements Model: compile the log, then count.
func (m *DCM) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// FitLog computes the closed-form estimates from a compiled log in one
// sharded counting pass.
func (m *DCM) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	n := c.maxPos
	nPair := c.NumPairs()
	stride := 2*nPair + 2*n
	workers := emWorkers(m.Workers, c.NumSessions())

	fs, buf := getScratch(workers * stride)
	defer putScratch(fs)
	nSess := c.NumSessions()
	if workers == 1 {
		dcmCount(c, buf[:stride], nPair, n, 0, nSess)
	} else {
		forEachShard(workers, nSess, func(w, lo, hi int) {
			dcmCount(c, buf[w*stride:(w+1)*stride], nPair, n, lo, hi)
		})
	}
	merged := mergeShards(buf, stride, workers)
	clicks := merged[:nPair]
	exams := merged[nPair : 2*nPair]
	clickAt := merged[2*nPair : 2*nPair+n]
	lastClickAt := merged[2*nPair+n:]

	m.Alpha = reuseMap(m.Alpha, nPair)
	for p, k := range c.pairs {
		if exams[p] > 0 {
			m.Alpha[k] = clampProb((clicks[p] + m.LaplaceA) / (exams[p] + m.LaplaceB))
		}
	}
	m.Lambda = reuseFloats(m.Lambda, n)
	for i := 0; i < n; i++ {
		if den := clickAt[i] + m.LaplaceB; den > 0 {
			m.Lambda[i] = clampProb(1 - (lastClickAt[i]+m.LaplaceA)/den)
		} else {
			m.Lambda[i] = 0.5
		}
	}
	return nil
}

// dcmCount accumulates one worker's counts for the sessions [lo, hi).
// Positions up to the last click are certainly examined; with no click,
// DCM's estimation treats the whole list as examined (the user never
// stops after skips).
func dcmCount(c *CompiledLog, acc []float64, nPair, n, lo, hi int) {
	clicks := acc[:nPair]
	exams := acc[nPair : 2*nPair]
	clickAt := acc[2*nPair : 2*nPair+n]
	lastClickAt := acc[2*nPair+n:]
	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		last := c.last[s]
		stop := last
		if stop < 0 {
			stop = e - b - 1
		}
		for i := b; i <= b+stop; i++ {
			p := c.pair[i]
			exams[p]++
			if c.click[i] {
				pos := int(i - b)
				clicks[p]++
				clickAt[pos]++
				if int32(pos) == last {
					lastClickAt[pos]++
				}
			}
		}
	}
}

func (m *DCM) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

func (m *DCM) lambda(i int) float64 {
	if i < len(m.Lambda) {
		return m.Lambda[i]
	}
	return 0.5
}

// ClickProbs implements Model: forward recursion over the marginal
// examination probability.
func (m *DCM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *DCM) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		out[i] = exam * a
		// E_{i+1} = E_i and (clicked -> lambda_i, skipped -> 1).
		exam = exam * (a*m.lambda(i) + (1 - a))
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *DCM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		a := m.alpha(s.Query, d)
		exam = exam * (a*m.lambda(i) + (1 - a))
	}
	return out
}

// SessionLogLikelihood implements Model. Given the click vector, positions
// up to the last click are examined with certainty; the tail after the
// last click marginalises over where the user abandoned.
func (m *DCM) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for i := 0; i <= last; i++ {
		a := m.alpha(s.Query, s.Docs[i])
		if s.Clicks[i] {
			ll += log(a)
			if i < last {
				// Continued after this click.
				ll += log(m.lambda(i))
			}
		} else {
			ll += log(1 - a)
		}
	}
	// Tail: after the last click (or from the top, with no clicks) the
	// user examines onwards and must not click. If the last position
	// clicked closed the session, the user either stopped (1-lambda) or
	// continued and skipped everything; marginalise the stop decision.
	tail := 1.0 // probability of observing all-skips after `last`
	for i := len(s.Docs) - 1; i > last; i-- {
		a := m.alpha(s.Query, s.Docs[i])
		tail = (1 - a) * tail
	}
	if last >= 0 {
		ll += log((1 - m.lambda(last)) + m.lambda(last)*tail)
	} else {
		ll += log(tail)
	}
	return ll
}
