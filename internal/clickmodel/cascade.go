package clickmodel

// Cascade is the cascade model of Craswell et al.: the user scans results
// strictly top-to-bottom, clicks the first attractive result, and stops.
//
//	P(E_1 = 1) = 1
//	P(E_i = 1 | E_{i-1} = 1) = 1 - C_{i-1}
//	P(C_i = 1 | E_i = 1)     = alpha(q, d_i)
//
// The model permits at most one click per session; its likelihood is zero
// for multi-click sessions (handled with the probability floor). Maximum
// likelihood estimation is closed-form: a document's attractiveness is the
// fraction of its *examined* impressions that were clicked, where the
// examined positions of a session are those up to and including the first
// click (all positions, if there is no click). The count pass runs over
// the compiled log, sharded like the EM models' E-steps.
type Cascade struct {
	Alpha      map[qd]float64
	PriorAlpha float64 // attractiveness for unseen (query, doc); default 0.5

	// LaplaceA and LaplaceB are the add-a/add-b smoothing counts for the
	// click/examination ratio (default 1 and 2: a Beta(1,1) prior mean).
	LaplaceA, LaplaceB float64
	// Workers caps the parallel counting fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewCascade returns a Cascade with default smoothing.
func NewCascade() *Cascade { return &Cascade{PriorAlpha: 0.5, LaplaceA: 1, LaplaceB: 2} }

// Name implements Model.
func (m *Cascade) Name() string { return "Cascade" }

func (m *Cascade) defaults() {
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
	if m.LaplaceA < 0 || m.LaplaceB < 0 {
		m.LaplaceA, m.LaplaceB = 1, 2
	}
}

// Fit implements Model: compile the log, then count.
func (m *Cascade) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// FitLog computes the closed-form MLE described on the type from a
// compiled log in one sharded counting pass.
func (m *Cascade) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	nPair := c.NumPairs()
	workers := emWorkers(m.Workers, c.NumSessions())

	fs, buf := getScratch(workers * 2 * nPair)
	defer putScratch(fs)
	all := buf
	nSess := c.NumSessions()
	if workers == 1 {
		cascadeCount(c, all[:nPair], all[nPair:2*nPair], 0, nSess)
	} else {
		forEachShard(workers, nSess, func(w, lo, hi int) {
			base := all[w*2*nPair:]
			cascadeCount(c, base[:nPair], base[nPair:2*nPair], lo, hi)
		})
	}
	merged := mergeShards(all, 2*nPair, workers)
	clicks, exams := merged[:nPair], merged[nPair:2*nPair]

	m.Alpha = reuseMap(m.Alpha, nPair)
	for p, k := range c.pairs {
		if exams[p] > 0 {
			m.Alpha[k] = clampProb((clicks[p] + m.LaplaceA) / (exams[p] + m.LaplaceB))
		}
	}
	return nil
}

// cascadeCount accumulates click/examination counts for the sessions
// [lo, hi): every position up to and including the first click is
// examined (the whole list when there is no click).
func cascadeCount(c *CompiledLog, clicks, exams []float64, lo, hi int) {
	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		stop := c.first[s]
		if stop < 0 {
			stop = e - b - 1
		}
		for i := b; i <= b+stop; i++ {
			p := c.pair[i]
			exams[p]++
			if c.click[i] {
				clicks[p]++
			}
		}
	}
}

func (m *Cascade) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

// ClickProbs implements Model: P(C_i=1) = alpha_i * prod_{j<i} (1-alpha_j).
func (m *Cascade) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *Cascade) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	survive := 1.0
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		out[i] = survive * a
		survive *= 1 - a
	}
	return out
}

// ExaminationProbs implements Examiner: the marginal probability the scan
// reaches position i.
func (m *Cascade) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	survive := 1.0
	for i, d := range s.Docs {
		out[i] = survive
		survive *= 1 - m.alpha(s.Query, d)
	}
	return out
}

// SessionLogLikelihood implements Model. Sessions with more than one click
// are impossible under the cascade hypothesis and score the floor
// probability per extra click.
func (m *Cascade) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	stopped := false
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		switch {
		case stopped:
			// Anything after the first click is unexamined: a click here
			// has probability 0 (floored), a skip probability 1.
			if s.Clicks[i] {
				ll += log(0)
			}
		case s.Clicks[i]:
			ll += log(a)
			stopped = true
		default:
			ll += log(1 - a)
		}
	}
	return ll
}
