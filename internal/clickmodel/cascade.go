package clickmodel

// Cascade is the cascade model of Craswell et al.: the user scans results
// strictly top-to-bottom, clicks the first attractive result, and stops.
//
//	P(E_1 = 1) = 1
//	P(E_i = 1 | E_{i-1} = 1) = 1 - C_{i-1}
//	P(C_i = 1 | E_i = 1)     = alpha(q, d_i)
//
// The model permits at most one click per session; its likelihood is zero
// for multi-click sessions (handled with the probability floor). Maximum
// likelihood estimation is closed-form: a document's attractiveness is the
// fraction of its *examined* impressions that were clicked, where the
// examined positions of a session are those up to and including the first
// click (all positions, if there is no click).
type Cascade struct {
	Alpha      map[qd]float64
	PriorAlpha float64 // attractiveness for unseen (query, doc); default 0.5

	// LaplaceA and LaplaceB are the add-a/add-b smoothing counts for the
	// click/examination ratio (default 1 and 2: a Beta(1,1) prior mean).
	LaplaceA, LaplaceB float64
}

// NewCascade returns a Cascade with default smoothing.
func NewCascade() *Cascade { return &Cascade{PriorAlpha: 0.5, LaplaceA: 1, LaplaceB: 2} }

// Name implements Model.
func (m *Cascade) Name() string { return "Cascade" }

func (m *Cascade) defaults() {
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
	if m.LaplaceA < 0 || m.LaplaceB < 0 {
		m.LaplaceA, m.LaplaceB = 1, 2
	}
}

// Fit implements Model with the closed-form MLE described on the type.
func (m *Cascade) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	type acc struct{ clicks, exams float64 }
	accs := make(map[qd]acc)
	for _, s := range sessions {
		stop := s.FirstClick()
		if stop < 0 {
			stop = len(s.Docs) - 1
		}
		for i := 0; i <= stop; i++ {
			k := qd{s.Query, s.Docs[i]}
			a := accs[k]
			a.exams++
			if s.Clicks[i] {
				a.clicks++
			}
			accs[k] = a
		}
	}
	m.Alpha = make(map[qd]float64, len(accs))
	for k, a := range accs {
		m.Alpha[k] = clampProb((a.clicks + m.LaplaceA) / (a.exams + m.LaplaceB))
	}
	return nil
}

func (m *Cascade) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

// ClickProbs implements Model: P(C_i=1) = alpha_i * prod_{j<i} (1-alpha_j).
func (m *Cascade) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	survive := 1.0
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		out[i] = survive * a
		survive *= 1 - a
	}
	return out
}

// ExaminationProbs implements Examiner: the marginal probability the scan
// reaches position i.
func (m *Cascade) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	survive := 1.0
	for i, d := range s.Docs {
		out[i] = survive
		survive *= 1 - m.alpha(s.Query, d)
	}
	return out
}

// SessionLogLikelihood implements Model. Sessions with more than one click
// are impossible under the cascade hypothesis and score the floor
// probability per extra click.
func (m *Cascade) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	stopped := false
	for i, d := range s.Docs {
		a := m.alpha(s.Query, d)
		switch {
		case stopped:
			// Anything after the first click is unexamined: a click here
			// has probability 0 (floored), a skip probability 1.
			if s.Clicks[i] {
				ll += log(0)
			}
		case s.Clicks[i]:
			ll += log(a)
			stopped = true
		default:
			ll += log(1 - a)
		}
	}
	return ll
}
