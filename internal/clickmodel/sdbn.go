package clickmodel

// SDBN is the simplified dynamic Bayesian network model: DBN with the
// continuation parameter fixed at gamma = 1. Estimation is closed-form
// counting over the compiled log, which makes SDBN the workhorse for
// large logs:
//
//	a(q,d) = clicks on d / impressions of d at positions <= last click
//	s(q,d) = sessions where d was the last click / sessions where d clicked
type SDBN struct {
	AttrA map[qd]float64
	SatS  map[qd]float64

	PriorA, PriorS     float64
	LaplaceA, LaplaceB float64
	// Workers caps the parallel counting fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewSDBN returns an SDBN with default smoothing.
func NewSDBN() *SDBN {
	return &SDBN{PriorA: 0.5, PriorS: 0.5, LaplaceA: 1, LaplaceB: 2}
}

// Name implements Model.
func (m *SDBN) Name() string { return "SDBN" }

func (m *SDBN) defaults() {
	if m.PriorA <= 0 || m.PriorA >= 1 {
		m.PriorA = 0.5
	}
	if m.PriorS <= 0 || m.PriorS >= 1 {
		m.PriorS = 0.5
	}
	// Laplace counts of zero are a valid (unsmoothed MLE) choice and are
	// respected; only negative values are replaced.
	if m.LaplaceA < 0 || m.LaplaceB < 0 {
		m.LaplaceA, m.LaplaceB = 1, 2
	}
}

// Fit implements Model: compile the log, then count.
func (m *SDBN) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// FitLog computes the closed-form estimates from a compiled log in one
// sharded counting pass.
func (m *SDBN) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	nPair := c.NumPairs()
	stride := 4 * nPair
	workers := emWorkers(m.Workers, c.NumSessions())

	fs, buf := getScratch(workers * stride)
	defer putScratch(fs)
	nSess := c.NumSessions()
	if workers == 1 {
		sdbnCount(c, buf[:stride], nPair, 0, nSess)
	} else {
		forEachShard(workers, nSess, func(w, lo, hi int) {
			sdbnCount(c, buf[w*stride:(w+1)*stride], nPair, lo, hi)
		})
	}
	merged := mergeShards(buf, stride, workers)
	aNum := merged[:nPair]
	aDen := merged[nPair : 2*nPair]
	sNum := merged[2*nPair : 3*nPair]
	sDen := merged[3*nPair:]

	m.AttrA = reuseMap(m.AttrA, nPair)
	m.SatS = reuseMap(m.SatS, nPair)
	for p, k := range c.pairs {
		if aDen[p] > 0 {
			m.AttrA[k] = clampProb((aNum[p] + m.LaplaceA) / (aDen[p] + m.LaplaceB))
		}
		if sDen[p] > 0 {
			m.SatS[k] = clampProb((sNum[p] + m.LaplaceA) / (sDen[p] + m.LaplaceB))
		}
	}
	return nil
}

// sdbnCount accumulates one worker's attractiveness/satisfaction counts
// for the sessions [lo, hi). With gamma = 1 a session without clicks
// means every result was examined and skipped.
func sdbnCount(c *CompiledLog, acc []float64, nPair, lo, hi int) {
	aNum := acc[:nPair]
	aDen := acc[nPair : 2*nPair]
	sNum := acc[2*nPair : 3*nPair]
	sDen := acc[3*nPair:]
	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		last := c.last[s]
		stop := last
		if stop < 0 {
			stop = e - b - 1
		}
		for i := b; i <= b+stop; i++ {
			p := c.pair[i]
			aDen[p]++
			if c.click[i] {
				aNum[p]++
				sDen[p]++
				if i-b == last {
					sNum[p]++
				}
			}
		}
	}
}

func (m *SDBN) a(q, d string) float64 {
	if v, ok := m.AttrA[qd{q, d}]; ok {
		return v
	}
	return m.PriorA
}

func (m *SDBN) s(q, d string) float64 {
	if v, ok := m.SatS[qd{q, d}]; ok {
		return v
	}
	return m.PriorS
}

// ClickProbs implements Model.
func (m *SDBN) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *SDBN) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		a := m.a(s.Query, d)
		out[i] = exam * a
		exam *= a*(1-m.s(s.Query, d)) + (1 - a)
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *SDBN) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		a := m.a(s.Query, d)
		exam *= a*(1-m.s(s.Query, d)) + (1 - a)
	}
	return out
}

// SessionLogLikelihood implements Model. With gamma = 1 the only
// marginalisation left is the satisfaction of the last click.
func (m *SDBN) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for i := 0; i <= last; i++ {
		a := m.a(s.Query, s.Docs[i])
		if s.Clicks[i] {
			ll += log(a)
			if i < last {
				ll += log(1 - m.s(s.Query, s.Docs[i]))
			}
		} else {
			ll += log(1 - a)
		}
	}
	// Tail: either satisfied at the last click, or continued and skipped
	// every remaining result (gamma = 1 leaves no stopping choice).
	tail := 1.0
	for i := len(s.Docs) - 1; i > last; i-- {
		tail *= 1 - m.a(s.Query, s.Docs[i])
	}
	if last >= 0 {
		sat := m.s(s.Query, s.Docs[last])
		ll += log(sat + (1-sat)*tail)
	} else {
		ll += log(tail)
	}
	return ll
}
