package clickmodel

// SDBN is the simplified dynamic Bayesian network model: DBN with the
// continuation parameter fixed at gamma = 1. Estimation is closed-form
// counting, which makes SDBN the workhorse for large logs:
//
//	a(q,d) = clicks on d / impressions of d at positions <= last click
//	s(q,d) = sessions where d was the last click / sessions where d clicked
type SDBN struct {
	AttrA map[qd]float64
	SatS  map[qd]float64

	PriorA, PriorS     float64
	LaplaceA, LaplaceB float64
}

// NewSDBN returns an SDBN with default smoothing.
func NewSDBN() *SDBN {
	return &SDBN{PriorA: 0.5, PriorS: 0.5, LaplaceA: 1, LaplaceB: 2}
}

// Name implements Model.
func (m *SDBN) Name() string { return "SDBN" }

func (m *SDBN) defaults() {
	if m.PriorA <= 0 || m.PriorA >= 1 {
		m.PriorA = 0.5
	}
	if m.PriorS <= 0 || m.PriorS >= 1 {
		m.PriorS = 0.5
	}
	// Laplace counts of zero are a valid (unsmoothed MLE) choice and are
	// respected; only negative values are replaced.
	if m.LaplaceA < 0 || m.LaplaceB < 0 {
		m.LaplaceA, m.LaplaceB = 1, 2
	}
}

// Fit implements Model with single-pass counting.
func (m *SDBN) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	type acc struct{ num, den float64 }
	aAcc := make(map[qd]acc)
	sAcc := make(map[qd]acc)
	for _, s := range sessions {
		last := s.LastClick()
		if last < 0 {
			// With gamma = 1 a session without clicks means every result
			// was examined and skipped.
			last = len(s.Docs) - 1
		}
		for i := 0; i <= last; i++ {
			k := qd{s.Query, s.Docs[i]}
			a := aAcc[k]
			a.den++
			if s.Clicks[i] {
				a.num++
				sc := sAcc[k]
				sc.den++
				if i == s.LastClick() {
					sc.num++
				}
				sAcc[k] = sc
			}
			aAcc[k] = a
		}
	}
	m.AttrA = make(map[qd]float64, len(aAcc))
	for k, a := range aAcc {
		m.AttrA[k] = clampProb((a.num + m.LaplaceA) / (a.den + m.LaplaceB))
	}
	m.SatS = make(map[qd]float64, len(sAcc))
	for k, sc := range sAcc {
		m.SatS[k] = clampProb((sc.num + m.LaplaceA) / (sc.den + m.LaplaceB))
	}
	return nil
}

func (m *SDBN) a(q, d string) float64 {
	if v, ok := m.AttrA[qd{q, d}]; ok {
		return v
	}
	return m.PriorA
}

func (m *SDBN) s(q, d string) float64 {
	if v, ok := m.SatS[qd{q, d}]; ok {
		return v
	}
	return m.PriorS
}

// ClickProbs implements Model.
func (m *SDBN) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		a := m.a(s.Query, d)
		out[i] = exam * a
		exam *= a*(1-m.s(s.Query, d)) + (1 - a)
	}
	return out
}

// ExaminationProbs implements Examiner.
func (m *SDBN) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	exam := 1.0
	for i, d := range s.Docs {
		out[i] = exam
		a := m.a(s.Query, d)
		exam *= a*(1-m.s(s.Query, d)) + (1 - a)
	}
	return out
}

// SessionLogLikelihood implements Model. With gamma = 1 the only
// marginalisation left is the satisfaction of the last click.
func (m *SDBN) SessionLogLikelihood(s Session) float64 {
	last := s.LastClick()
	ll := 0.0
	for i := 0; i <= last; i++ {
		a := m.a(s.Query, s.Docs[i])
		if s.Clicks[i] {
			ll += log(a)
			if i < last {
				ll += log(1 - m.s(s.Query, s.Docs[i]))
			}
		} else {
			ll += log(1 - a)
		}
	}
	// Tail: either satisfied at the last click, or continued and skipped
	// every remaining result (gamma = 1 leaves no stopping choice).
	tail := 1.0
	for i := len(s.Docs) - 1; i > last; i-- {
		tail *= 1 - m.a(s.Query, s.Docs[i])
	}
	if last >= 0 {
		sat := m.s(s.Query, s.Docs[last])
		ll += log(sat + (1-sat)*tail)
	} else {
		ll += log(tail)
	}
	return ll
}
