package clickmodel

import (
	"math"
	"sync"
	"testing"
)

func TestVocabInterning(t *testing.T) {
	v := NewVocab()
	if got := v.ID("alpha"); got != 0 {
		t.Fatalf("first ID = %d, want 0", got)
	}
	if got := v.ID("beta"); got != 1 {
		t.Fatalf("second ID = %d, want 1", got)
	}
	if got := v.ID("alpha"); got != 0 {
		t.Fatalf("re-interning changed ID: %d", got)
	}
	if got, ok := v.Lookup("beta"); !ok || got != 1 {
		t.Fatalf("Lookup(beta) = %d, %v", got, ok)
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Fatal("Lookup invented an ID")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.String(0) != "alpha" || v.String(1) != "beta" {
		t.Fatal("String round-trip broken")
	}
}

func TestCompileLayout(t *testing.T) {
	sessions := []Session{
		{Query: "q1", Docs: []string{"a", "b", "c"}, Clicks: []bool{false, true, false}},
		{Query: "q2", Docs: []string{"a"}, Clicks: []bool{true}},
		{Query: "q1", Docs: []string{"b", "a"}, Clicks: []bool{false, false}},
	}
	c, err := Compile(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSessions() != 3 || c.NumImpressions() != 6 || c.MaxPositions() != 3 {
		t.Fatalf("sizes: %d sessions, %d impressions, %d maxPos",
			c.NumSessions(), c.NumImpressions(), c.MaxPositions())
	}
	// (q1,a), (q1,b), (q1,c), (q2,a) — 4 distinct pairs; (q1,b) reused.
	if c.NumPairs() != 4 {
		t.Fatalf("NumPairs = %d, want 4", c.NumPairs())
	}
	if id, ok := c.PairID("q1", "b"); !ok {
		t.Fatal("missing pair (q1, b)")
	} else if q, d := c.Pair(id); q != "q1" || d != "b" {
		t.Fatalf("Pair round-trip = (%s, %s)", q, d)
	}
	if _, ok := c.PairID("q2", "b"); ok {
		t.Fatal("PairID invented a pair")
	}
	// Session 2 shares pair IDs with session 0.
	id1, _ := c.PairID("q1", "b")
	if c.pair[c.off[2]] != id1 {
		t.Fatal("pair interning not shared across sessions")
	}
	// Derived per-session state matches the Session helpers.
	for s, sess := range sessions {
		if int(c.last[s]) != sess.LastClick() || int(c.first[s]) != sess.FirstClick() {
			t.Fatalf("session %d: last/first = %d/%d, want %d/%d",
				s, c.last[s], c.first[s], sess.LastClick(), sess.FirstClick())
		}
		prev := prevClickIndex(sess)
		for i := range sess.Docs {
			if int(c.prev[c.off[s]+int32(i)]) != prev[i] {
				t.Fatalf("session %d pos %d: prev = %d, want %d",
					s, i, c.prev[c.off[s]+int32(i)], prev[i])
			}
		}
	}
	// Count constants.
	if c.posCount[0] != 3 || c.posCount[1] != 2 || c.posCount[2] != 1 {
		t.Fatalf("posCount = %v", c.posCount)
	}
	if id, _ := c.PairID("q1", "a"); c.pairCount[id] != 2 {
		t.Fatalf("pairCount[(q1,a)] = %v, want 2", c.pairCount[id])
	}
}

func TestCompileRejectsBadLogs(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Error("Compile accepted an empty log")
	}
	bad := []Session{{Query: "q", Docs: []string{"a"}, Clicks: nil}}
	if _, err := Compile(bad); err == nil {
		t.Error("Compile accepted a malformed session")
	}
}

func TestFitLogNilGuard(t *testing.T) {
	for _, m := range All() {
		lf, ok := m.(LogFitter)
		if !ok {
			continue
		}
		if err := lf.FitLog(nil); err == nil {
			t.Errorf("%s.FitLog(nil) succeeded", m.Name())
		}
	}
}

func TestUBMCellCounts(t *testing.T) {
	sessions := []Session{
		{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, false}},
		{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{false, false}},
	}
	c, err := Compile(sessions)
	if err != nil {
		t.Fatal(err)
	}
	cells := c.ubmCellCounts()
	// Position 0 col 0: both sessions. Position 1: col 1 (click at 1)
	// once, col 0 once.
	if cells[tri(0)+0] != 2 {
		t.Errorf("cell (0,0) = %v, want 2", cells[tri(0)+0])
	}
	if cells[tri(1)+1] != 1 || cells[tri(1)+0] != 1 {
		t.Errorf("cells (1,·) = %v/%v, want 1/1", cells[tri(1)+0], cells[tri(1)+1])
	}
}

func TestEMWorkersResolution(t *testing.T) {
	if got := emWorkers(4, 10); got != 4 {
		t.Errorf("explicit workers = %d, want 4", got)
	}
	if got := emWorkers(8, 3); got != 3 {
		t.Errorf("workers capped by sessions = %d, want 3", got)
	}
	if got := emWorkers(0, 10); got != 1 {
		t.Errorf("auto workers on tiny log = %d, want 1", got)
	}
	if got := emWorkers(-1, 0); got != 1 {
		t.Errorf("degenerate workers = %d, want 1", got)
	}
}

func TestForEachShardCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		covered := make([]int32, 100)
		var mu sync.Mutex
		forEachShard(workers, len(covered), func(w, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, n)
			}
		}
	}
}

// TestConcurrentFitsShareLog exercises concurrent FitLog calls of
// separate model instances over one shared CompiledLog with a forced
// parallel E-step — the -race target for the pooled scratch and the
// read-only compiled log.
func TestConcurrentFitsShareLog(t *testing.T) {
	sessions := synthParityLog(707, 2500)
	c, err := Compile(sessions)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pbm := NewPBM()
			pbm.Iterations, pbm.Workers = 4, 3
			if err := pbm.FitLog(c); err != nil {
				errs <- err
				return
			}
			dbn := NewDBN()
			dbn.Iterations, dbn.Workers = 4, 3
			if err := dbn.FitLog(c); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInplaceScorersMatchClickProbs pins ClickProbsInto to ClickProbs
// for every registered model, including buffer reuse across sessions
// of different lengths.
func TestInplaceScorersMatchClickProbs(t *testing.T) {
	sessions := synthParityLog(808, 800)
	for _, m := range All() {
		if err := m.Fit(sessions); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		ip, ok := m.(InplaceScorer)
		if !ok {
			t.Fatalf("%s does not implement InplaceScorer", m.Name())
		}
		var buf []float64
		for _, s := range sessions[:100] {
			want := m.ClickProbs(s)
			buf = ip.ClickProbsInto(s, buf)
			if len(buf) != len(want) {
				t.Fatalf("%s: len %d, want %d", m.Name(), len(buf), len(want))
			}
			for i := range want {
				if math.Abs(buf[i]-want[i]) > 1e-12 {
					t.Fatalf("%s: pos %d: %v vs %v", m.Name(), i, buf[i], want[i])
				}
			}
		}
	}
}

// TestDeepSessionScoring covers the heap fallback of the stack-buffered
// scoring recursions (sessions deeper than maxStackPositions).
func TestDeepSessionScoring(t *testing.T) {
	depth := maxStackPositions + 8
	docs := make([]string, depth)
	clicks := make([]bool, depth)
	for i := range docs {
		docs[i] = string(rune('a' + i%26))
		clicks[i] = i%17 == 3
	}
	sessions := []Session{{Query: "q", Docs: docs, Clicks: clicks}}
	m := NewUBM()
	m.Iterations = 2
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	probs := m.ClickProbsInto(sessions[0], nil)
	if len(probs) != depth {
		t.Fatalf("len = %d, want %d", len(probs), depth)
	}
	for i, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probs[%d] = %v", i, p)
		}
	}
}
