// Package clickmodel implements the classical macro user-browsing models for
// ranked search results surveyed in Section II of the paper: the position
// model (examination hypothesis), the cascade model, the dependent click
// model (DCM), the user browsing model (UBM), a Bayesian browsing variant
// (BBM), the click chain model (CCM), the dynamic Bayesian network model
// (DBN), its simplified form (SDBN), a generalised chain model (GCM) and
// a post-click session utility model (SUM).
//
// These models estimate, per result position, the probability that a user
// examines the *whole* result. They serve two roles in this repository:
// they are the baselines the micro-browsing model is contrasted with, and
// they drive the macro (SERP-level) examination layer of the sponsored
// search simulator in internal/serp.
//
// All models share the Session type — one query impression with the shown
// documents and the observed click pattern — and the Model interface, so
// they can be fitted and evaluated interchangeably. Estimation runs on a
// compiled form of the log (see Vocab and CompiledLog): queries and
// (query, doc) pairs are interned to dense int32 IDs once, and the EM or
// counting passes accumulate into flat ID-indexed arrays sharded over a
// worker pool, instead of rebuilding string-keyed maps per iteration.
// Fit(sessions) compiles internally; callers fitting several models on
// one log should Compile once and use each model's FitLog.
package clickmodel

import (
	"errors"
	"fmt"
	"math"
)

// Session is a single query impression: the ranked documents that were
// shown and which of them were clicked. Docs[i] is the document at
// position i+1 (positions are 1-based in the literature, 0-based here as
// slice indices).
// The JSON tags make sessions part of the serving wire format (the
// macro evidence of cmd/microserve's /v1/score requests).
type Session struct {
	Query  string   `json:"query"`
	Docs   []string `json:"docs"`
	Clicks []bool   `json:"clicks"`
}

// Validate reports whether the session is well-formed.
func (s Session) Validate() error {
	if len(s.Docs) == 0 {
		return errors.New("clickmodel: session has no documents")
	}
	if len(s.Docs) != len(s.Clicks) {
		return fmt.Errorf("clickmodel: %d docs but %d click indicators", len(s.Docs), len(s.Clicks))
	}
	return nil
}

// LastClick returns the 0-based index of the last clicked position, or -1
// if the session has no click.
func (s Session) LastClick() int {
	for i := len(s.Clicks) - 1; i >= 0; i-- {
		if s.Clicks[i] {
			return i
		}
	}
	return -1
}

// FirstClick returns the 0-based index of the first clicked position, or
// -1 if the session has no click.
func (s Session) FirstClick() int {
	for i, c := range s.Clicks {
		if c {
			return i
		}
	}
	return -1
}

// ClickCount returns the number of clicks in the session.
func (s Session) ClickCount() int {
	n := 0
	for _, c := range s.Clicks {
		if c {
			n++
		}
	}
	return n
}

// Model is a trainable click model.
type Model interface {
	// Name identifies the model in reports ("PBM", "UBM", ...).
	Name() string

	// Fit estimates the model parameters from a session log.
	Fit(sessions []Session) error

	// ClickProbs returns the marginal probability P(C_i = 1) for every
	// position of the session, using only the query and shown documents
	// (never the session's own clicks). This is the quantity scored by
	// perplexity and used for CTR prediction.
	ClickProbs(s Session) []float64

	// SessionLogLikelihood returns log P(observed click vector) under the
	// model, honouring the model's sequential dependence structure.
	SessionLogLikelihood(s Session) float64
}

// Examiner is implemented by models that expose a marginal examination
// probability per position (before conditioning on any click), such as the
// position model. Used by the simulator and by examination-curve reports.
type Examiner interface {
	ExaminationProbs(s Session) []float64
}

// InplaceScorer is implemented by models whose ClickProbs can write into
// a caller-provided buffer, making repeated scoring allocation-free.
// The returned slice is buf (resliced) when buf has the capacity, or a
// fresh slice otherwise. Every built-in model implements it.
type InplaceScorer interface {
	ClickProbsInto(s Session, buf []float64) []float64
}

// IterativeModel is implemented by models estimated with EM, whose
// iteration count is tunable (e.g. from a command-line flag) without
// knowing the concrete type.
type IterativeModel interface {
	SetIterations(n int)
}

// maxStackPositions is the deepest result list for which the scoring
// recursions keep their state on the stack; longer (rare) sessions
// fall back to heap scratch.
const maxStackPositions = 64

// resizeProbs returns buf resliced to n when it has the capacity, or a
// fresh slice of length n.
func resizeProbs(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// clickProbsInto scores through the model's in-place path when it has
// one, falling back to the allocating ClickProbs.
func clickProbsInto(m Model, s Session, buf []float64) []float64 {
	if ip, ok := m.(InplaceScorer); ok {
		return ip.ClickProbsInto(s, buf)
	}
	return m.ClickProbs(s)
}

// qd keys attractiveness/relevance parameters by (query, document).
type qd struct{ q, d string }

// probEps clamps probabilities away from {0,1} so logarithms and EM
// posteriors stay finite.
const probEps = 1e-9

func clampProb(p float64) float64 {
	if p < probEps {
		return probEps
	}
	if p > 1-probEps {
		return 1 - probEps
	}
	return p
}

func log(p float64) float64 { return math.Log(clampProb(p)) }

// bernoulliLL returns log P(click=c) for a Bernoulli with parameter p.
func bernoulliLL(p float64, c bool) float64 {
	if c {
		return log(p)
	}
	return log(1 - p)
}

// maxPositions scans a session log for the longest result list.
func maxPositions(sessions []Session) int {
	max := 0
	for _, s := range sessions {
		if len(s.Docs) > max {
			max = len(s.Docs)
		}
	}
	return max
}

// validateAll checks every session and the log as a whole.
func validateAll(sessions []Session) error {
	if len(sessions) == 0 {
		return errors.New("clickmodel: empty session log")
	}
	for i, s := range sessions {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
	}
	return nil
}

// MeanCTRByPosition returns the empirical CTR at each position of the log,
// a useful model-free baseline and sanity check.
func MeanCTRByPosition(sessions []Session) []float64 {
	n := maxPositions(sessions)
	clicks := make([]float64, n)
	imps := make([]float64, n)
	for _, s := range sessions {
		for i, c := range s.Clicks {
			imps[i]++
			if c {
				clicks[i]++
			}
		}
	}
	out := make([]float64, n)
	for i := range out {
		if imps[i] > 0 {
			out[i] = clicks[i] / imps[i]
		}
	}
	return out
}
