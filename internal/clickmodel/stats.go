package clickmodel

import "errors"

// Stats is an incremental sufficient-statistics accumulator for the
// counting-family click models (SDBN, Cascade, DCM). Where Compile
// turns a *finished* log into dense arrays once, Stats grows the same
// dense per-pair and per-position arrays one session at a time, so an
// online learner can fold live click feedback into model-ready counts
// without re-compiling history on every refit.
//
// The accumulated quantities are exactly the merged counting arrays of
// the models' FitLog passes:
//
//   - clicks / examLast — clicks and impressions at positions up to
//     and including the last click (the whole list when there is no
//     click): SDBN's attractiveness ratio and DCM's alpha.
//   - satNum            — sessions where the pair was the last click:
//     SDBN's satisfaction numerator (its denominator is clicks).
//   - clickFirst / examFirst — the same counts truncated at the first
//     click: the cascade model's click/examination ratio.
//   - clickAt / lastAt  — per-position click and last-click counts:
//     DCM's lambda.
//
// Counts are float64 so Decay can age old traffic out exponentially —
// the sliding-window semantics of the online loop. Merge folds one
// accumulator into another (per-shard deltas into a global table), and
// Reset zeroes the counts while keeping the interned vocabulary, so a
// steady-state delta shard allocates nothing.
//
// A Stats is not safe for concurrent use; the stream layer gives each
// ingest shard its own and serialises merges.
type Stats struct {
	queries *Vocab
	pairIDs map[pairKey]int32
	pairs   []qd

	clicks     []float64 // per pair: clicks (every click is <= the last click)
	examLast   []float64 // per pair: impressions at positions <= last click
	satNum     []float64 // per pair: sessions where the pair was the last click
	clickFirst []float64 // per pair: clicks at positions <= first click
	examFirst  []float64 // per pair: impressions at positions <= first click

	clickAt []float64 // per position: clicks
	lastAt  []float64 // per position: last clicks

	sessions float64 // decayed session mass
	added    uint64  // sessions ever added (undecayed)
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{queries: NewVocab(), pairIDs: make(map[pairKey]int32)}
}

// pairID interns a (query ID, doc) pair, growing every per-pair array
// in step so the count slices always cover pair IDs densely.
func (st *Stats) pairID(qid int32, doc string) int32 {
	k := pairKey{qid, doc}
	if id, ok := st.pairIDs[k]; ok {
		return id
	}
	id := int32(len(st.pairs))
	st.pairIDs[k] = id
	st.pairs = append(st.pairs, qd{st.queries.String(qid), doc})
	st.clicks = append(st.clicks, 0)
	st.examLast = append(st.examLast, 0)
	st.satNum = append(st.satNum, 0)
	st.clickFirst = append(st.clickFirst, 0)
	st.examFirst = append(st.examFirst, 0)
	return id
}

// growPos extends the per-position arrays to cover n positions.
func (st *Stats) growPos(n int) {
	for len(st.clickAt) < n {
		st.clickAt = append(st.clickAt, 0)
		st.lastAt = append(st.lastAt, 0)
	}
}

// Add folds one session into the accumulator. The session must be
// well-formed (the same contract Fit enforces on whole logs).
func (st *Stats) Add(s Session) error {
	if err := s.Validate(); err != nil {
		return err
	}
	qid := st.queries.ID(s.Query)
	n := len(s.Docs)
	st.growPos(n)

	last, first := s.LastClick(), s.FirstClick()
	stopLast, stopFirst := last, first
	if stopLast < 0 {
		stopLast = n - 1
	}
	if stopFirst < 0 {
		stopFirst = n - 1
	}
	for i, d := range s.Docs {
		if i > stopLast && i > stopFirst {
			break
		}
		p := st.pairID(qid, d)
		if i <= stopLast {
			st.examLast[p]++
			if s.Clicks[i] {
				st.clicks[p]++
				st.clickAt[i]++
				if i == last {
					st.satNum[p]++
					st.lastAt[i]++
				}
			}
		}
		if i <= stopFirst {
			st.examFirst[p]++
			if s.Clicks[i] {
				st.clickFirst[p]++
			}
		}
	}
	st.sessions++
	st.added++
	return nil
}

// AddAll folds a whole log, stopping at the first invalid session.
func (st *Stats) AddAll(sessions []Session) error {
	for i := range sessions {
		if err := st.Add(sessions[i]); err != nil {
			return err
		}
	}
	return nil
}

// Decay scales every count by f in [0, 1], exponentially aging out old
// traffic: with per-publish decay f, a session observed k publishes ago
// carries weight f^k. Values outside [0, 1] are ignored.
func (st *Stats) Decay(f float64) {
	if f < 0 || f >= 1 {
		return
	}
	scale := func(xs []float64) {
		for i := range xs {
			xs[i] *= f
		}
	}
	scale(st.clicks)
	scale(st.examLast)
	scale(st.satNum)
	scale(st.clickFirst)
	scale(st.examFirst)
	scale(st.clickAt)
	scale(st.lastAt)
	st.sessions *= f
}

// Merge folds src into st. idmap caches the src-pair-ID → st-pair-ID
// mapping across calls (src pair IDs are stable across Reset); pass nil
// on first use and the returned slice thereafter. Steady-state merges —
// all pairs already seen — allocate nothing.
func (st *Stats) Merge(src *Stats, idmap []int32) []int32 {
	if src == nil {
		return idmap
	}
	for p := len(idmap); p < len(src.pairs); p++ {
		k := src.pairs[p]
		idmap = append(idmap, st.pairID(st.queries.ID(k.q), k.d))
	}
	for p := range src.pairs {
		id := idmap[p]
		st.clicks[id] += src.clicks[p]
		st.examLast[id] += src.examLast[p]
		st.satNum[id] += src.satNum[p]
		st.clickFirst[id] += src.clickFirst[p]
		st.examFirst[id] += src.examFirst[p]
	}
	st.growPos(len(src.clickAt))
	for i := range src.clickAt {
		st.clickAt[i] += src.clickAt[i]
		st.lastAt[i] += src.lastAt[i]
	}
	st.sessions += src.sessions
	st.added += src.added
	return idmap
}

// Prune drops every pair whose impression mass has decayed below
// minMass, compacting the pair table and count arrays in place, and
// returns how many pairs were dropped. Pair IDs are renumbered, so any
// externally cached ID mapping (Merge idmaps) must be discarded after
// a prune that dropped pairs. Long-lived decayed accumulators call
// this periodically — an open-ended query/doc space otherwise grows
// the table with every pair ever seen.
func (st *Stats) Prune(minMass float64) int {
	kept := 0
	for p := range st.pairs {
		if st.examLast[p] < minMass && st.examFirst[p] < minMass {
			delete(st.pairIDs, pairKey{st.queries.ID(st.pairs[p].q), st.pairs[p].d})
			continue
		}
		if kept != p {
			k := st.pairs[p]
			st.pairs[kept] = k
			st.pairIDs[pairKey{st.queries.ID(k.q), k.d}] = int32(kept)
			st.clicks[kept] = st.clicks[p]
			st.examLast[kept] = st.examLast[p]
			st.satNum[kept] = st.satNum[p]
			st.clickFirst[kept] = st.clickFirst[p]
			st.examFirst[kept] = st.examFirst[p]
		}
		kept++
	}
	dropped := len(st.pairs) - kept
	st.pairs = st.pairs[:kept]
	st.clicks = st.clicks[:kept]
	st.examLast = st.examLast[:kept]
	st.satNum = st.satNum[:kept]
	st.clickFirst = st.clickFirst[:kept]
	st.examFirst = st.examFirst[:kept]
	return dropped
}

// Reset zeroes every count but keeps the interned vocabulary and array
// capacity, so a delta accumulator refills without allocating.
func (st *Stats) Reset() {
	clear(st.clicks)
	clear(st.examLast)
	clear(st.satNum)
	clear(st.clickFirst)
	clear(st.examFirst)
	clear(st.clickAt)
	clear(st.lastAt)
	st.sessions = 0
	st.added = 0
}

// NumPairs returns the number of distinct (query, doc) pairs observed.
func (st *Stats) NumPairs() int { return len(st.pairs) }

// MaxPositions returns the longest result list observed.
func (st *Stats) MaxPositions() int { return len(st.clickAt) }

// Weight returns the decayed session mass currently in the accumulator.
func (st *Stats) Weight() float64 { return st.sessions }

// Added returns the number of sessions ever folded in (undecayed).
func (st *Stats) Added() uint64 { return st.added }

// StatsFitter is implemented by the counting-family models, whose
// closed-form estimates need only the sufficient statistics a Stats
// accumulates — the online-learning analogue of LogFitter. FitStats
// reuses the model's exported parameter storage like FitLog does.
type StatsFitter interface {
	FitStats(st *Stats) error
}

// errEmptyStats guards the FitStats entry points.
var errEmptyStats = errors.New("clickmodel: FitStats on an empty accumulator")

// FitStats implements StatsFitter: SDBN's closed-form estimates from
// accumulated counts. Identical to FitLog on a log holding the same
// (undecayed) sessions.
func (m *SDBN) FitStats(st *Stats) error {
	if st == nil || st.NumPairs() == 0 {
		return errEmptyStats
	}
	m.defaults()
	m.AttrA = reuseMap(m.AttrA, st.NumPairs())
	m.SatS = reuseMap(m.SatS, st.NumPairs())
	for p, k := range st.pairs {
		if st.examLast[p] > 0 {
			m.AttrA[k] = clampProb((st.clicks[p] + m.LaplaceA) / (st.examLast[p] + m.LaplaceB))
		}
		if st.clicks[p] > 0 {
			m.SatS[k] = clampProb((st.satNum[p] + m.LaplaceA) / (st.clicks[p] + m.LaplaceB))
		}
	}
	return nil
}

// FitStats implements StatsFitter: the cascade MLE from accumulated
// first-click-truncated counts.
func (m *Cascade) FitStats(st *Stats) error {
	if st == nil || st.NumPairs() == 0 {
		return errEmptyStats
	}
	m.defaults()
	m.Alpha = reuseMap(m.Alpha, st.NumPairs())
	for p, k := range st.pairs {
		if st.examFirst[p] > 0 {
			m.Alpha[k] = clampProb((st.clickFirst[p] + m.LaplaceA) / (st.examFirst[p] + m.LaplaceB))
		}
	}
	return nil
}

// FitStats implements StatsFitter: DCM's alphas from the last-click-
// truncated counts and its lambdas from the per-position click /
// last-click ratios.
func (m *DCM) FitStats(st *Stats) error {
	if st == nil || st.NumPairs() == 0 {
		return errEmptyStats
	}
	m.defaults()
	m.Alpha = reuseMap(m.Alpha, st.NumPairs())
	for p, k := range st.pairs {
		if st.examLast[p] > 0 {
			m.Alpha[k] = clampProb((st.clicks[p] + m.LaplaceA) / (st.examLast[p] + m.LaplaceB))
		}
	}
	n := st.MaxPositions()
	m.Lambda = reuseFloats(m.Lambda, n)
	for i := 0; i < n; i++ {
		if den := st.clickAt[i] + m.LaplaceB; den > 0 {
			m.Lambda[i] = clampProb(1 - (st.lastAt[i]+m.LaplaceA)/den)
		} else {
			m.Lambda[i] = 0.5
		}
	}
	return nil
}
