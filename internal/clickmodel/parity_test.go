package clickmodel

// Parity property tests: the compiled-log (interned, dense, sharded)
// fits must reproduce the seed map-based fits parameter-for-parameter.
// Each ref* function below is a direct port of the pre-compiled-log
// estimation code; the tests fit both on shared synthetic logs and
// compare every exported parameter within parityTol.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

const parityTol = 1e-9

// synthParityLog builds a varied synthetic log: multiple queries,
// result lists of mixed depth, multi-click, single-click and clickless
// sessions — the shapes that exercise every branch of the estimators.
func synthParityLog(seed int64, n int) []Session {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Session, 0, n)
	for k := 0; k < n; k++ {
		q := fmt.Sprintf("q%d", rng.Intn(12))
		depth := 1 + rng.Intn(8)
		perm := rng.Perm(16)
		docs := make([]string, depth)
		clicks := make([]bool, depth)
		examining := true
		for i := 0; i < depth; i++ {
			d := perm[i]
			docs[i] = fmt.Sprintf("d%d", d)
			if examining {
				attr := 0.08 + 0.05*float64(d%10)
				if rng.Float64() < attr {
					clicks[i] = true
					if rng.Float64() < 0.45 {
						examining = false
					}
				}
				if rng.Float64() > 0.88 {
					examining = false
				}
			}
		}
		out = append(out, Session{Query: q, Docs: docs, Clicks: clicks})
	}
	return out
}

func compareQDMaps(t *testing.T, what string, got, want map[qd]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing key %v", what, k)
		}
		if math.Abs(g-w) > parityTol {
			t.Errorf("%s[%v] = %.15f, want %.15f (|diff| %g)", what, k, g, w, math.Abs(g-w))
		}
	}
}

func compareSlices(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > parityTol {
			t.Errorf("%s[%d] = %.15f, want %.15f", what, i, got[i], want[i])
		}
	}
}

func compareScalar(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > parityTol {
		t.Errorf("%s = %.15f, want %.15f", what, got, want)
	}
}

type refAcc struct{ num, den float64 }

// refPBM is the seed map-based PBM EM.
func refPBM(sessions []Session, iters int, prior float64) ([]float64, map[qd]float64) {
	n := maxPositions(sessions)
	gamma := make([]float64, n)
	for i := range gamma {
		gamma[i] = 1.0 / (1.0 + float64(i))
	}
	alpha := make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			alpha[qd{s.Query, d}] = prior
		}
	}
	for iter := 0; iter < iters; iter++ {
		gammaNum := make([]float64, n)
		gammaDen := make([]float64, n)
		alphaAcc := make(map[qd]refAcc, len(alpha))
		for _, s := range sessions {
			for i, d := range s.Docs {
				k := qd{s.Query, d}
				a := alpha[k]
				g := gamma[i]
				var postE, postA float64
				if s.Clicks[i] {
					postE, postA = 1, 1
				} else {
					den := clampProb(1 - a*g)
					postE = g * (1 - a) / den
					postA = a * (1 - g) / den
				}
				gammaNum[i] += postE
				gammaDen[i]++
				ac := alphaAcc[k]
				ac.num += postA
				ac.den++
				alphaAcc[k] = ac
			}
		}
		for i := 0; i < n; i++ {
			if gammaDen[i] > 0 {
				gamma[i] = clampProb(gammaNum[i] / gammaDen[i])
			}
		}
		for k, ac := range alphaAcc {
			if ac.den > 0 {
				alpha[k] = clampProb(ac.num / ac.den)
			}
		}
	}
	return gamma, alpha
}

// refUBM is the seed map-based UBM EM.
func refUBM(sessions []Session, iters int, prior float64) ([][]float64, map[qd]float64) {
	n := maxPositions(sessions)
	gamma := make([][]float64, n)
	for i := range gamma {
		gamma[i] = make([]float64, i+1)
		for j := range gamma[i] {
			gamma[i][j] = 1.0 / (1.0 + float64(i-j))
		}
	}
	alpha := make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			alpha[qd{s.Query, d}] = prior
		}
	}
	for iter := 0; iter < iters; iter++ {
		gNum := make([][]float64, n)
		gDen := make([][]float64, n)
		for i := range gNum {
			gNum[i] = make([]float64, i+1)
			gDen[i] = make([]float64, i+1)
		}
		aAcc := make(map[qd]refAcc, len(alpha))
		for _, s := range sessions {
			prev := prevClickIndex(s)
			for i, d := range s.Docs {
				k := qd{s.Query, d}
				a := alpha[k]
				g := gamma[i][prev[i]]
				var postE, postA float64
				if s.Clicks[i] {
					postE, postA = 1, 1
				} else {
					den := clampProb(1 - a*g)
					postE = g * (1 - a) / den
					postA = a * (1 - g) / den
				}
				gNum[i][prev[i]] += postE
				gDen[i][prev[i]]++
				ac := aAcc[k]
				ac.num += postA
				ac.den++
				aAcc[k] = ac
			}
		}
		for i := range gamma {
			for j := range gamma[i] {
				if gDen[i][j] > 0 {
					gamma[i][j] = clampProb(gNum[i][j] / gDen[i][j])
				}
			}
		}
		for k, ac := range aAcc {
			if ac.den > 0 {
				alpha[k] = clampProb(ac.num / ac.den)
			}
		}
	}
	return gamma, alpha
}

// refCascade is the seed closed-form cascade MLE.
func refCascade(sessions []Session, laplaceA, laplaceB float64) map[qd]float64 {
	type acc struct{ clicks, exams float64 }
	accs := make(map[qd]acc)
	for _, s := range sessions {
		stop := s.FirstClick()
		if stop < 0 {
			stop = len(s.Docs) - 1
		}
		for i := 0; i <= stop; i++ {
			k := qd{s.Query, s.Docs[i]}
			a := accs[k]
			a.exams++
			if s.Clicks[i] {
				a.clicks++
			}
			accs[k] = a
		}
	}
	alpha := make(map[qd]float64, len(accs))
	for k, a := range accs {
		alpha[k] = clampProb((a.clicks + laplaceA) / (a.exams + laplaceB))
	}
	return alpha
}

// refDCM is the seed closed-form DCM estimation.
func refDCM(sessions []Session, laplaceA, laplaceB float64) (map[qd]float64, []float64) {
	n := maxPositions(sessions)
	type acc struct{ clicks, exams float64 }
	accs := make(map[qd]acc)
	lastClickAt := make([]float64, n)
	clickAt := make([]float64, n)
	for _, s := range sessions {
		last := s.LastClick()
		stop := last
		if stop < 0 {
			stop = len(s.Docs) - 1
		}
		for i := 0; i <= stop; i++ {
			k := qd{s.Query, s.Docs[i]}
			a := accs[k]
			a.exams++
			if s.Clicks[i] {
				a.clicks++
				clickAt[i]++
				if i == last {
					lastClickAt[i]++
				}
			}
			accs[k] = a
		}
	}
	alpha := make(map[qd]float64, len(accs))
	for k, a := range accs {
		alpha[k] = clampProb((a.clicks + laplaceA) / (a.exams + laplaceB))
	}
	lambda := make([]float64, n)
	for i := 0; i < n; i++ {
		if den := clickAt[i] + laplaceB; den > 0 {
			lambda[i] = clampProb(1 - (lastClickAt[i]+laplaceA)/den)
		} else {
			lambda[i] = 0.5
		}
	}
	return alpha, lambda
}

// refSDBN is the seed closed-form SDBN counting.
func refSDBN(sessions []Session, laplaceA, laplaceB float64) (map[qd]float64, map[qd]float64) {
	aAcc := make(map[qd]refAcc)
	sAcc := make(map[qd]refAcc)
	for _, s := range sessions {
		last := s.LastClick()
		if last < 0 {
			last = len(s.Docs) - 1
		}
		for i := 0; i <= last; i++ {
			k := qd{s.Query, s.Docs[i]}
			a := aAcc[k]
			a.den++
			if s.Clicks[i] {
				a.num++
				sc := sAcc[k]
				sc.den++
				if i == s.LastClick() {
					sc.num++
				}
				sAcc[k] = sc
			}
			aAcc[k] = a
		}
	}
	attr := make(map[qd]float64, len(aAcc))
	for k, a := range aAcc {
		attr[k] = clampProb((a.num + laplaceA) / (a.den + laplaceB))
	}
	sat := make(map[qd]float64, len(sAcc))
	for k, sc := range sAcc {
		sat[k] = clampProb((sc.num + laplaceA) / (sc.den + laplaceB))
	}
	return attr, sat
}

// refDBN is the seed map-based DBN EM (with its per-session
// tail-posterior allocations).
func refDBN(sessions []Session, iters int, priorA, priorS, gamma0 float64) (map[qd]float64, map[qd]float64, float64) {
	attr := make(map[qd]float64)
	sat := make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			k := qd{s.Query, d}
			attr[k] = priorA
			sat[k] = priorS
		}
	}
	gamma := gamma0
	a := func(q, d string) float64 { return attr[qd{q, d}] }
	sf := func(q, d string) float64 { return sat[qd{q, d}] }

	tail := func(s Session, last int) (pSat float64, pExam []float64) {
		n := len(s.Docs)
		pExam = make([]float64, n)
		wStop := make([]float64, n)
		var wSat float64
		if last >= 0 {
			sl := sf(s.Query, s.Docs[last])
			wSat = sl
			cur := 1 - sl
			for t := last; t < n; t++ {
				if t > last {
					cur *= gamma * (1 - a(s.Query, s.Docs[t]))
				}
				w := cur
				if t < n-1 {
					w *= 1 - gamma
				}
				wStop[t] = w
			}
		} else {
			cur := 1.0
			for t := 0; t < n; t++ {
				if t > 0 {
					cur *= gamma
				}
				cur *= 1 - a(s.Query, s.Docs[t])
				w := cur
				if t < n-1 {
					w *= 1 - gamma
				}
				wStop[t] = w
			}
		}
		z := wSat
		for _, w := range wStop {
			z += w
		}
		if z <= 0 {
			z = probEps
		}
		pSat = wSat / z
		suffix := 0.0
		for j := n - 1; j > last; j-- {
			suffix += wStop[j]
			pExam[j] = suffix / z
		}
		return pSat, pExam
	}

	for iter := 0; iter < iters; iter++ {
		aAcc := make(map[qd]refAcc, len(attr))
		sAcc := make(map[qd]refAcc, len(sat))
		var gNum, gDen float64
		for _, sess := range sessions {
			n := len(sess.Docs)
			last := sess.LastClick()
			for j := 0; j <= last; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ac := aAcc[k]
				ac.den++
				if sess.Clicks[j] {
					ac.num++
				}
				aAcc[k] = ac
				if sess.Clicks[j] && j < last {
					sc := sAcc[k]
					sc.den++
					sAcc[k] = sc
					gNum++
					gDen++
				}
				if !sess.Clicks[j] && j < last {
					gNum++
					gDen++
				}
			}
			pSat, pExam := tail(sess, last)
			if last >= 0 {
				k := qd{sess.Query, sess.Docs[last]}
				sc := sAcc[k]
				sc.num += pSat
				sc.den++
				sAcc[k] = sc
				if last < n-1 {
					gDen += 1 - pSat
					gNum += pExam[last+1]
				}
			}
			for j := last + 1; j < n; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ac := aAcc[k]
				ac.den += pExam[j]
				aAcc[k] = ac
				if j < n-1 {
					gDen += pExam[j]
					gNum += pExam[j+1]
				}
			}
		}
		for k, ac := range aAcc {
			if ac.den > 0 {
				attr[k] = clampProb(ac.num / ac.den)
			}
		}
		for k, sc := range sAcc {
			if sc.den > 0 {
				sat[k] = clampProb(sc.num / sc.den)
			}
		}
		if gDen > 0 {
			gamma = clampProb(gNum / gDen)
		}
	}
	return attr, sat, gamma
}

// refCCM is the seed map-based CCM EM.
func refCCM(sessions []Session, iters int, priorR, alpha1, alpha2, alpha3 float64) (map[qd]float64, float64, float64, float64) {
	rel := make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			rel[qd{s.Query, d}] = priorR
		}
	}
	r := func(q, d string) float64 { return rel[qd{q, d}] }
	contClick := func(rv float64) float64 { return alpha2*(1-rv) + alpha3*rv }

	tail := func(s Session, last int) (pCont float64, pExam []float64) {
		n := len(s.Docs)
		pExam = make([]float64, n)
		wStop := make([]float64, n)
		if last >= 0 {
			cont := contClick(r(s.Query, s.Docs[last]))
			cur := 1.0
			for t := last; t < n; t++ {
				if t > last {
					step := alpha1
					if t == last+1 {
						step = cont
					}
					cur *= step * (1 - r(s.Query, s.Docs[t]))
				}
				w := cur
				if t < n-1 {
					stop := 1 - alpha1
					if t == last {
						stop = 1 - cont
					}
					w *= stop
				}
				wStop[t] = w
			}
		} else {
			cur := 1.0
			for t := 0; t < n; t++ {
				if t > 0 {
					cur *= alpha1
				}
				cur *= 1 - r(s.Query, s.Docs[t])
				w := cur
				if t < n-1 {
					w *= 1 - alpha1
				}
				wStop[t] = w
			}
		}
		var z float64
		for _, w := range wStop {
			z += w
		}
		if z <= 0 {
			z = probEps
		}
		suffix := 0.0
		for j := n - 1; j > last; j-- {
			suffix += wStop[j]
			pExam[j] = suffix / z
		}
		if last >= 0 && last < n-1 {
			pCont = pExam[last+1]
		}
		return pCont, pExam
	}

	for iter := 0; iter < iters; iter++ {
		rAcc := make(map[qd]refAcc, len(rel))
		var a1Num, a1Den float64
		var a2Num, a2Den, a3Num, a3Den float64
		for _, sess := range sessions {
			n := len(sess.Docs)
			last := sess.LastClick()
			for j := 0; j <= last; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den++
				if sess.Clicks[j] {
					ra.num++
				}
				rAcc[k] = ra
				if j < last {
					if sess.Clicks[j] {
						rv := r(sess.Query, sess.Docs[j])
						a2Den += 1 - rv
						a2Num += 1 - rv
						a3Den += rv
						a3Num += rv
					} else {
						a1Den++
						a1Num++
					}
				}
			}
			pCont, pExam := tail(sess, last)
			if last >= 0 && last < n-1 {
				rv := r(sess.Query, sess.Docs[last])
				a2Den += 1 - rv
				a2Num += (1 - rv) * pCont
				a3Den += rv
				a3Num += rv * pCont
			}
			for j := last + 1; j < n; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den += pExam[j]
				rAcc[k] = ra
				if j < n-1 {
					a1Den += pExam[j]
					a1Num += pExam[j+1]
				}
			}
		}
		for k, ra := range rAcc {
			if ra.den > 0 {
				rel[k] = clampProb(ra.num / ra.den)
			}
		}
		if a1Den > 0 {
			alpha1 = clampProb(a1Num / a1Den)
		}
		if a2Den > 0 {
			alpha2 = clampProb(a2Num / a2Den)
		}
		if a3Den > 0 {
			alpha3 = clampProb(a3Num / a3Den)
		}
	}
	return rel, alpha1, alpha2, alpha3
}

// refGCM is the seed map-based GCM EM.
func refGCM(sessions []Session, iters int, priorR float64) (map[qd]float64, []float64, []float64) {
	n := maxPositions(sessions)
	lambdaSkip := make([]float64, n)
	lambdaClick := make([]float64, n)
	for i := 0; i < n; i++ {
		lambdaSkip[i] = 0.9
		lambdaClick[i] = 0.6
	}
	rel := make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			rel[qd{s.Query, d}] = priorR
		}
	}
	r := func(q, d string) float64 { return rel[qd{q, d}] }

	tail := func(s Session, last int) []float64 {
		n := len(s.Docs)
		pExam := make([]float64, n)
		wStop := make([]float64, n)
		start := last
		cont0 := 1.0
		if last >= 0 {
			cont0 = lambdaClick[last]
		} else {
			start = 0
		}
		cur := 1.0
		for t := start; t < n; t++ {
			switch {
			case last >= 0 && t == last:
			case last >= 0 && t == last+1:
				cur *= cont0 * (1 - r(s.Query, s.Docs[t]))
			case last < 0 && t == 0:
				cur *= 1 - r(s.Query, s.Docs[t])
			default:
				cur *= lambdaSkip[t-1] * (1 - r(s.Query, s.Docs[t]))
			}
			w := cur
			if t < n-1 {
				stop := 1 - lambdaSkip[t]
				if last >= 0 && t == last {
					stop = 1 - cont0
				}
				w *= stop
			}
			wStop[t] = w
		}
		var z float64
		for _, w := range wStop {
			z += w
		}
		if z <= 0 {
			z = probEps
		}
		suffix := 0.0
		for j := n - 1; j > last; j-- {
			suffix += wStop[j]
			pExam[j] = suffix / z
		}
		return pExam
	}

	for iter := 0; iter < iters; iter++ {
		rAcc := make(map[qd]refAcc, len(rel))
		skipNum := make([]float64, n)
		skipDen := make([]float64, n)
		clickNum := make([]float64, n)
		clickDen := make([]float64, n)
		for _, sess := range sessions {
			ns := len(sess.Docs)
			last := sess.LastClick()
			for j := 0; j <= last; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den++
				if sess.Clicks[j] {
					ra.num++
				}
				rAcc[k] = ra
				if j < last {
					if sess.Clicks[j] {
						clickNum[j]++
						clickDen[j]++
					} else {
						skipNum[j]++
						skipDen[j]++
					}
				}
			}
			pExam := tail(sess, last)
			if last >= 0 && last < ns-1 {
				clickDen[last]++
				clickNum[last] += pExam[last+1]
			}
			for j := last + 1; j < ns; j++ {
				k := qd{sess.Query, sess.Docs[j]}
				ra := rAcc[k]
				ra.den += pExam[j]
				rAcc[k] = ra
				if j < ns-1 {
					skipDen[j] += pExam[j]
					skipNum[j] += pExam[j+1]
				}
			}
		}
		for k, ra := range rAcc {
			if ra.den > 0 {
				rel[k] = clampProb(ra.num / ra.den)
			}
		}
		for i := 0; i < n; i++ {
			if skipDen[i] > 0 {
				lambdaSkip[i] = clampProb(skipNum[i] / skipDen[i])
			}
			if clickDen[i] > 0 {
				lambdaClick[i] = clampProb(clickNum[i] / clickDen[i])
			}
		}
	}
	return rel, lambdaSkip, lambdaClick
}

// parityLogs returns the seeds the property tests sweep.
var paritySeeds = []int64{101, 202, 303}

func TestPBMParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewPBM()
		m.Iterations = 8
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		gamma, alpha := refPBM(sessions, 8, m.PriorAlpha)
		compareSlices(t, "PBM gamma", m.Gamma, gamma)
		compareQDMaps(t, "PBM alpha", m.Alpha, alpha)
	}
}

func TestUBMParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewUBM()
		m.Iterations = 8
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		gamma, alpha := refUBM(sessions, 8, m.PriorAlpha)
		if len(m.Gamma) != len(gamma) {
			t.Fatalf("gamma rows %d, want %d", len(m.Gamma), len(gamma))
		}
		for i := range gamma {
			compareSlices(t, fmt.Sprintf("UBM gamma[%d]", i), m.Gamma[i], gamma[i])
		}
		compareQDMaps(t, "UBM alpha", m.Alpha, alpha)
	}
}

func TestCascadeParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewCascade()
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		compareQDMaps(t, "Cascade alpha", m.Alpha, refCascade(sessions, m.LaplaceA, m.LaplaceB))
	}
}

func TestDCMParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewDCM()
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		alpha, lambda := refDCM(sessions, m.LaplaceA, m.LaplaceB)
		compareQDMaps(t, "DCM alpha", m.Alpha, alpha)
		compareSlices(t, "DCM lambda", m.Lambda, lambda)
	}
}

func TestSDBNParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewSDBN()
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		attr, sat := refSDBN(sessions, m.LaplaceA, m.LaplaceB)
		compareQDMaps(t, "SDBN attr", m.AttrA, attr)
		compareQDMaps(t, "SDBN sat", m.SatS, sat)
	}
}

func TestDBNParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewDBN()
		m.Iterations = 8
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		attr, sat, gamma := refDBN(sessions, 8, m.PriorA, m.PriorS, 0.9)
		compareQDMaps(t, "DBN attr", m.AttrA, attr)
		compareQDMaps(t, "DBN sat", m.SatS, sat)
		compareScalar(t, "DBN gamma", m.Gamma, gamma)
	}
}

func TestCCMParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewCCM()
		m.Iterations = 8
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		rel, a1, a2, a3 := refCCM(sessions, 8, 0.5, 0.8, 0.6, 0.9)
		compareQDMaps(t, "CCM rel", m.Rel, rel)
		compareScalar(t, "CCM alpha1", m.Alpha1, a1)
		compareScalar(t, "CCM alpha2", m.Alpha2, a2)
		compareScalar(t, "CCM alpha3", m.Alpha3, a3)
	}
}

func TestGCMParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 3000)
		m := NewGCM()
		m.Iterations = 8
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}
		rel, lSkip, lClick := refGCM(sessions, 8, 0.5)
		compareQDMaps(t, "GCM rel", m.Rel, rel)
		compareSlices(t, "GCM lambdaSkip", m.LambdaSkip, lSkip)
		compareSlices(t, "GCM lambdaClick", m.LambdaClick, lClick)
	}
}

// refBBMPosterior is the seed grid evaluation of E[R | log] from
// map-keyed sufficient statistics (click count plus skip counts keyed
// by the examination gamma they were observed under).
func refBBMPosterior(c float64, nc map[float64]float64, grid int) float64 {
	if c == 0 && len(nc) == 0 {
		return 0.5
	}
	step := 1.0 / float64(grid-1)
	lws := make([]float64, grid)
	maxLW := math.Inf(-1)
	for i := 0; i < grid; i++ {
		r := float64(i) * step
		lw := 0.0
		if c > 0 {
			lw += c * log(r)
		}
		for g, n := range nc {
			lw += n * log(1-g*r)
		}
		lws[i] = lw
		if lw > maxLW {
			maxLW = lw
		}
	}
	var num, den float64
	for i, lw := range lws {
		w := math.Exp(lw - maxLW)
		num += w * float64(i) * step
		den += w
	}
	if den == 0 {
		return 0.5
	}
	return num / den
}

// TestBBMParity checks the Bayesian posterior means against a reference
// built from the seed's map-keyed sufficient statistics over the
// reference UBM browsing layer.
func TestBBMParity(t *testing.T) {
	for _, seed := range paritySeeds {
		sessions := synthParityLog(seed, 2000)
		m := NewBBM()
		m.SetIterations(8)
		if err := m.Fit(sessions); err != nil {
			t.Fatal(err)
		}

		gamma, _ := refUBM(sessions, 8, 0.5)
		clicks := make(map[qd]float64)
		nonClick := make(map[qd]map[float64]float64)
		for _, s := range sessions {
			prev := prevClickIndex(s)
			for i, d := range s.Docs {
				k := qd{s.Query, d}
				if s.Clicks[i] {
					clicks[k]++
					continue
				}
				g := gamma[i][prev[i]]
				inner := nonClick[k]
				if inner == nil {
					inner = make(map[float64]float64)
					nonClick[k] = inner
				}
				inner[g]++
			}
		}
		refPM := func(k qd) float64 { return refBBMPosterior(clicks[k], nonClick[k], 51) }

		seen := make(map[qd]bool)
		for _, s := range sessions {
			for _, d := range s.Docs {
				k := qd{s.Query, d}
				if seen[k] {
					continue
				}
				seen[k] = true
				got := m.PosteriorMean(k.q, k.d)
				want := refPM(k)
				if math.Abs(got-want) > parityTol {
					t.Errorf("BBM posterior[%v] = %.15f, want %.15f", k, got, want)
				}
			}
		}
		if got := m.PosteriorMean("unseen-q", "unseen-d"); got != 0.5 {
			t.Errorf("unseen posterior = %v, want prior 0.5", got)
		}
	}
}

// TestBBMSparseFallbackParity forces the sparse skip-count layout
// (result lists deeper than the dense cell cap) and pins its posterior
// means to the same map-keyed reference.
func TestBBMSparseFallbackParity(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	sessions := make([]Session, 0, 60)
	for k := 0; k < 60; k++ {
		depth := 46 + rng.Intn(6) // tri(46) = 1081 > maxDenseBBMCells
		docs := make([]string, depth)
		clicks := make([]bool, depth)
		for i := range docs {
			docs[i] = fmt.Sprintf("d%d", rng.Intn(30))
			clicks[i] = rng.Float64() < 0.08
		}
		sessions = append(sessions, Session{Query: "q", Docs: docs, Clicks: clicks})
	}
	m := NewBBM()
	m.SetIterations(3)
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	if m.nonClickS == nil {
		t.Fatal("deep log did not select the sparse skip-count layout")
	}

	// Reference counts over the *fitted* browsing layer isolate the
	// counting/posterior path from the EM.
	clicks := make(map[qd]float64)
	nonClick := make(map[qd]map[float64]float64)
	for _, s := range sessions {
		prev := prevClickIndex(s)
		for i, d := range s.Docs {
			k := qd{s.Query, d}
			if s.Clicks[i] {
				clicks[k]++
				continue
			}
			g := m.Browse.gamma(i, prev[i])
			if nonClick[k] == nil {
				nonClick[k] = make(map[float64]float64)
			}
			nonClick[k][g]++
		}
	}
	for k := range nonClick {
		got := m.PosteriorMean(k.q, k.d)
		want := refBBMPosterior(clicks[k], nonClick[k], 51)
		if math.Abs(got-want) > parityTol {
			t.Errorf("sparse posterior[%v] = %.15f, want %.15f", k, got, want)
		}
	}
}

// TestParallelFitParity asserts the sharded E-step merge reproduces the
// sequential fit within tolerance for every parallelised model, and —
// run under -race — exercises the concurrent accumulation paths on any
// machine regardless of GOMAXPROCS.
func TestParallelFitParity(t *testing.T) {
	sessions := synthParityLog(404, 4000)
	c, err := Compile(sessions)
	if err != nil {
		t.Fatal(err)
	}
	fit := func(m Model, workers int) (Model, error) {
		switch mm := m.(type) {
		case *PBM:
			mm.Iterations, mm.Workers = 6, workers
		case *UBM:
			mm.Iterations, mm.Workers = 6, workers
		case *DBN:
			mm.Iterations, mm.Workers = 6, workers
		case *CCM:
			mm.Iterations, mm.Workers = 6, workers
		case *GCM:
			mm.Iterations, mm.Workers = 6, workers
		case *Cascade:
			mm.Workers = workers
		case *DCM:
			mm.Workers = workers
		case *SDBN:
			mm.Workers = workers
		case *BBM:
			mm.SetIterations(6)
			mm.Workers = workers
			mm.Browse.Workers = workers
		}
		return m, m.(LogFitter).FitLog(c)
	}
	news := []func() Model{
		func() Model { return NewPBM() },
		func() Model { return NewCascade() },
		func() Model { return NewDCM() },
		func() Model { return NewUBM() },
		func() Model { return NewBBM() },
		func() Model { return NewCCM() },
		func() Model { return NewDBN() },
		func() Model { return NewSDBN() },
		func() Model { return NewGCM() },
	}
	for _, newModel := range news {
		seqM, err := fit(newModel(), 1)
		if err != nil {
			t.Fatal(err)
		}
		parM, err := fit(newModel(), 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(seqM.Name(), func(t *testing.T) {
			probe := sessions[:200]
			buf := make([]float64, 0, 16)
			for _, s := range probe {
				seq := seqM.ClickProbs(s)
				par := clickProbsInto(parM, s, buf)
				for i := range seq {
					if math.Abs(seq[i]-par[i]) > parityTol {
						t.Fatalf("%s: parallel fit diverged at %v pos %d: %.15f vs %.15f",
							seqM.Name(), s.Query, i, seq[i], par[i])
					}
				}
				if d := math.Abs(seqM.SessionLogLikelihood(s) - parM.SessionLogLikelihood(s)); d > 1e-7 {
					t.Fatalf("%s: LL diverged by %g", seqM.Name(), d)
				}
			}
		})
	}
}

// TestRefitReusesStorage pins the refit contract: fitting the same
// model twice on a log reuses the exported map storage and yields the
// same parameters (cold refits of closed-form models are exact; EM
// models restart from the same initial point for slices/maps).
func TestRefitReusesStorage(t *testing.T) {
	sessions := synthParityLog(505, 1500)
	c, err := Compile(sessions)
	if err != nil {
		t.Fatal(err)
	}
	m := NewPBM()
	m.Iterations = 5
	if err := m.FitLog(c); err != nil {
		t.Fatal(err)
	}
	first := make(map[qd]float64, len(m.Alpha))
	for k, v := range m.Alpha {
		first[k] = v
	}
	if err := m.FitLog(c); err != nil {
		t.Fatal(err)
	}
	compareQDMaps(t, "refit alpha", m.Alpha, first)

	// Closed-form refit on a different log must not leak stale pairs.
	other := synthParityLog(606, 500)
	c2, err := Compile(other)
	if err != nil {
		t.Fatal(err)
	}
	cas := NewCascade()
	if err := cas.FitLog(c); err != nil {
		t.Fatal(err)
	}
	if err := cas.FitLog(c2); err != nil {
		t.Fatal(err)
	}
	compareQDMaps(t, "cascade refit", cas.Alpha, refCascade(other, cas.LaplaceA, cas.LaplaceB))
}
