package clickmodel

// PBM is the position-based model: the examination hypothesis of
// Richardson et al. formalised by Craswell et al.
//
//	P(C_i = 1) = alpha(q, d_i) * gamma(i)
//
// Examination depends only on the position, independent of every other
// result (Section II-A of the paper). Parameters are estimated with EM
// over the compiled (interned, dense) form of the log.
type PBM struct {
	// Gamma[i] is the probability that position i+1 is examined.
	Gamma []float64
	// Alpha maps (query, doc) to attractiveness: the probability of a
	// click given examination.
	Alpha map[qd]float64

	// Iterations is the number of EM rounds (default 20).
	Iterations int
	// PriorAlpha initialises unseen attractiveness values (default 0.5).
	PriorAlpha float64
	// Workers caps the parallel E-step fan-out (0 = GOMAXPROCS).
	Workers int
}

// NewPBM returns a PBM with default hyper-parameters.
func NewPBM() *PBM { return &PBM{Iterations: 20, PriorAlpha: 0.5} }

// Name implements Model.
func (m *PBM) Name() string { return "PBM" }

// SetIterations implements IterativeModel.
func (m *PBM) SetIterations(n int) { m.Iterations = n }

func (m *PBM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
}

// Fit implements Model: compile the log, then run the dense EM.
func (m *PBM) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// FitLog runs EM over a compiled log. The E-step computes, for every
// impression, the posterior probability that the result was examined
// and that it was attractive given the observed click; the M-step
// averages those posteriors into the per-position gammas and per-pair
// alphas. Impressions are sharded over Workers goroutines with
// per-worker accumulators merged before the M-step; the posterior
// denominators (impressions per position and per pair) are log
// constants precomputed at Compile.
func (m *PBM) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	m.defaults()
	n := c.maxPos
	nPair := c.NumPairs()
	workers := emWorkers(m.Workers, c.NumSessions())

	m.Gamma = reuseFloats(m.Gamma, n)
	for i := range m.Gamma {
		// Initialise with a gentle decay so EM starts from a plausible,
		// symmetric-breaking point.
		m.Gamma[i] = 1.0 / (1.0 + float64(i))
	}

	fs, buf := getScratch(nPair + workers*(n+nPair))
	defer putScratch(fs)
	sl := slab{buf}
	alpha := sl.take(nPair)
	for p := range alpha {
		alpha[p] = m.PriorAlpha
	}
	gAll := sl.take(workers * n)
	aAll := sl.take(workers * nPair)

	nSess := c.NumSessions()
	for iter := 0; iter < m.Iterations; iter++ {
		if iter > 0 {
			clear(gAll)
			clear(aAll)
		}
		if workers == 1 {
			pbmEStep(c, m.Gamma, alpha, gAll, aAll, 0, nSess)
		} else {
			forEachShard(workers, nSess, func(w, lo, hi int) {
				pbmEStep(c, m.Gamma, alpha,
					gAll[w*n:(w+1)*n], aAll[w*nPair:(w+1)*nPair], lo, hi)
			})
		}
		gNum := mergeShards(gAll, n, workers)
		aNum := mergeShards(aAll, nPair, workers)

		for i := 0; i < n; i++ {
			if c.posCount[i] > 0 {
				m.Gamma[i] = clampProb(gNum[i] / c.posCount[i])
			}
		}
		for p := 0; p < nPair; p++ {
			if c.pairCount[p] > 0 {
				alpha[p] = clampProb(aNum[p] / c.pairCount[p])
			}
		}
	}

	m.Alpha = c.materializeInto(m.Alpha, alpha)
	return nil
}

// pbmEStep accumulates the examination/attraction posteriors of the
// sessions [lo, hi) into one worker's gNum/aNum regions.
func pbmEStep(c *CompiledLog, gamma, alpha, gNum, aNum []float64, lo, hi int) {
	for s := lo; s < hi; s++ {
		b, e := c.off[s], c.off[s+1]
		for i := b; i < e; i++ {
			pos := int(i - b)
			p := c.pair[i]
			a := alpha[p]
			g := gamma[pos]
			if c.click[i] {
				// A click implies examination and attraction.
				gNum[pos]++
				aNum[p]++
			} else {
				// P(E=1|C=0) and P(A=1|C=0).
				den := clampProb(1 - a*g)
				gNum[pos] += g * (1 - a) / den
				aNum[p] += a * (1 - g) / den
			}
		}
	}
}

func (m *PBM) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

// ClickProbs implements Model.
func (m *PBM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer, reusing buf when it has the
// capacity.
func (m *PBM) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	for i, d := range s.Docs {
		g := 0.0
		if i < len(m.Gamma) {
			g = m.Gamma[i]
		}
		out[i] = m.alpha(s.Query, d) * g
	}
	return out
}

// ExaminationProbs implements Examiner: under PBM examination is the
// per-position gamma, independent of the documents.
func (m *PBM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	for i := range out {
		if i < len(m.Gamma) {
			out[i] = m.Gamma[i]
		}
	}
	return out
}

// SessionLogLikelihood implements Model. Under PBM positions are
// independent, so the session likelihood factorises.
func (m *PBM) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	for i, d := range s.Docs {
		g := 0.0
		if i < len(m.Gamma) {
			g = m.Gamma[i]
		}
		ll += bernoulliLL(m.alpha(s.Query, d)*g, s.Clicks[i])
	}
	return ll
}
