package clickmodel

// PBM is the position-based model: the examination hypothesis of
// Richardson et al. formalised by Craswell et al.
//
//	P(C_i = 1) = alpha(q, d_i) * gamma(i)
//
// Examination depends only on the position, independent of every other
// result (Section II-A of the paper). Parameters are estimated with EM.
type PBM struct {
	// Gamma[i] is the probability that position i+1 is examined.
	Gamma []float64
	// Alpha maps (query, doc) to attractiveness: the probability of a
	// click given examination.
	Alpha map[qd]float64

	// Iterations is the number of EM rounds (default 20).
	Iterations int
	// PriorAlpha initialises unseen attractiveness values (default 0.5).
	PriorAlpha float64
}

// NewPBM returns a PBM with default hyper-parameters.
func NewPBM() *PBM { return &PBM{Iterations: 20, PriorAlpha: 0.5} }

// Name implements Model.
func (m *PBM) Name() string { return "PBM" }

func (m *PBM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorAlpha <= 0 || m.PriorAlpha >= 1 {
		m.PriorAlpha = 0.5
	}
}

// Fit runs EM. The E-step computes, for every impression, the posterior
// probability that the result was examined and that it was attractive
// given the observed click; the M-step averages those posteriors into the
// per-position gammas and per-(query,doc) alphas.
func (m *PBM) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	n := maxPositions(sessions)

	m.Gamma = make([]float64, n)
	for i := range m.Gamma {
		// Initialise with a gentle decay so EM starts from a plausible,
		// symmetric-breaking point.
		m.Gamma[i] = 1.0 / (1.0 + float64(i))
	}
	m.Alpha = make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range s.Docs {
			m.Alpha[qd{s.Query, d}] = m.PriorAlpha
		}
	}

	type acc struct{ num, den float64 }
	for iter := 0; iter < m.Iterations; iter++ {
		gammaNum := make([]float64, n)
		gammaDen := make([]float64, n)
		alphaAcc := make(map[qd]acc, len(m.Alpha))

		for _, s := range sessions {
			for i, d := range s.Docs {
				k := qd{s.Query, d}
				a := m.Alpha[k]
				g := m.Gamma[i]
				var postE, postA float64
				if s.Clicks[i] {
					// A click implies examination and attraction.
					postE, postA = 1, 1
				} else {
					// P(E=1|C=0) and P(A=1|C=0).
					den := clampProb(1 - a*g)
					postE = g * (1 - a) / den
					postA = a * (1 - g) / den
				}
				gammaNum[i] += postE
				gammaDen[i]++
				ac := alphaAcc[k]
				ac.num += postA
				ac.den++
				alphaAcc[k] = ac
			}
		}

		for i := 0; i < n; i++ {
			if gammaDen[i] > 0 {
				m.Gamma[i] = clampProb(gammaNum[i] / gammaDen[i])
			}
		}
		for k, ac := range alphaAcc {
			if ac.den > 0 {
				m.Alpha[k] = clampProb(ac.num / ac.den)
			}
		}
	}
	return nil
}

func (m *PBM) alpha(q, d string) float64 {
	if a, ok := m.Alpha[qd{q, d}]; ok {
		return a
	}
	return m.PriorAlpha
}

// ClickProbs implements Model.
func (m *PBM) ClickProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	for i, d := range s.Docs {
		g := 0.0
		if i < len(m.Gamma) {
			g = m.Gamma[i]
		}
		out[i] = m.alpha(s.Query, d) * g
	}
	return out
}

// ExaminationProbs implements Examiner: under PBM examination is the
// per-position gamma, independent of the documents.
func (m *PBM) ExaminationProbs(s Session) []float64 {
	out := make([]float64, len(s.Docs))
	for i := range out {
		if i < len(m.Gamma) {
			out[i] = m.Gamma[i]
		}
	}
	return out
}

// SessionLogLikelihood implements Model. Under PBM positions are
// independent, so the session likelihood factorises.
func (m *PBM) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	for i, p := range m.ClickProbs(s) {
		ll += bernoulliLL(p, s.Clicks[i])
	}
	return ll
}
