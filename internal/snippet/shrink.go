package snippet

import "math"

// BetaPrior is an empirical-Bayes prior over creative CTRs, fitted to a
// population of creatives by the method of moments on a beta-binomial
// model. Shrinking raw CTRs towards the population mean stabilises the
// serve weights of lightly served creatives — the practical antidote to
// the finite-sample noise that dominates pair labels at low impression
// counts.
type BetaPrior struct {
	Alpha, Beta float64
}

// FitBetaPrior estimates the prior from observed creative stats by
// matching the mean and variance of the per-creative CTRs, correcting
// the variance for binomial sampling noise. Creatives with fewer than
// minImpressions are ignored. Returns a weak uniform-ish prior when the
// data cannot identify one.
func FitBetaPrior(stats []Stats, minImpressions int64) BetaPrior {
	var ctrs []float64
	var ns []float64
	for _, s := range stats {
		if s.Impressions >= minImpressions && s.Impressions > 0 {
			ctrs = append(ctrs, s.CTR())
			ns = append(ns, float64(s.Impressions))
		}
	}
	fallback := BetaPrior{Alpha: 1, Beta: 9} // weak prior around 10% CTR
	if len(ctrs) < 2 {
		return fallback
	}
	var mean float64
	for _, c := range ctrs {
		mean += c
	}
	mean /= float64(len(ctrs))
	if mean <= 0 || mean >= 1 {
		return fallback
	}
	var varObs, invN float64
	for i, c := range ctrs {
		varObs += (c - mean) * (c - mean)
		invN += 1 / ns[i]
	}
	varObs /= float64(len(ctrs))
	invN /= float64(len(ctrs))

	// Observed variance = true CTR variance + mean binomial noise.
	noise := mean * (1 - mean) * invN
	varTrue := varObs - noise
	if varTrue <= 0 {
		// CTRs are statistically indistinguishable: shrink hard.
		varTrue = noise / 100
	}
	// Method of moments for Beta(a, b):
	// var = m(1-m)/(a+b+1)  =>  a+b = m(1-m)/var - 1.
	k := mean*(1-mean)/varTrue - 1
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return fallback
	}
	return BetaPrior{Alpha: mean * k, Beta: (1 - mean) * k}
}

// Shrink returns the posterior-mean CTR of a creative under the prior:
// (clicks + alpha) / (impressions + alpha + beta).
func (p BetaPrior) Shrink(s Stats) float64 {
	return (float64(s.Clicks) + p.Alpha) / (float64(s.Impressions) + p.Alpha + p.Beta)
}

// PriorMean returns the prior's mean CTR.
func (p BetaPrior) PriorMean() float64 { return p.Alpha / (p.Alpha + p.Beta) }

// ShrunkPairs enumerates the adgroup's creative pairs with serve weights
// computed from empirical-Bayes-shrunk CTRs instead of the raw ratios,
// using a prior fitted across all the supplied groups. Lightly served
// creatives regress towards the population mean, so fewer pairs carry
// spurious labels.
func ShrunkPairs(groups []AdGroup, minImpressions int64) []Pair {
	var all []Stats
	for _, g := range groups {
		all = append(all, g.Stats...)
	}
	prior := FitBetaPrior(all, minImpressions)

	var pairs []Pair
	for _, g := range groups {
		// Group CTR from shrunk components keeps serve weights
		// comparable across adgroups.
		var groupSum float64
		var m int
		for _, s := range g.Stats {
			groupSum += prior.Shrink(s)
			m++
		}
		if m == 0 || groupSum == 0 {
			continue
		}
		groupCTR := groupSum / float64(m)
		for i := 0; i < len(g.Creatives); i++ {
			for j := i + 1; j < len(g.Creatives); j++ {
				if g.Stats[i].Impressions < minImpressions || g.Stats[j].Impressions < minImpressions {
					continue
				}
				if g.Creatives[i].Equal(g.Creatives[j]) {
					continue
				}
				pairs = append(pairs, Pair{
					R:      g.Creatives[i],
					S:      g.Creatives[j],
					SWR:    prior.Shrink(g.Stats[i]) / groupCTR,
					SWS:    prior.Shrink(g.Stats[j]) / groupCTR,
					RStats: g.Stats[i],
					SStats: g.Stats[j],
				})
			}
		}
	}
	return pairs
}
