package snippet

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitBetaPriorRecovers(t *testing.T) {
	// Creatives with true CTRs drawn from Beta(4, 36) (mean 0.1),
	// observed through binomial sampling.
	rng := rand.New(rand.NewSource(1))
	const a, b = 4.0, 36.0
	var stats []Stats
	for i := 0; i < 3000; i++ {
		// Beta draw via two gammas.
		x := gammaDraw(rng, a)
		y := gammaDraw(rng, b)
		ctr := x / (x + y)
		n := int64(500 + rng.Intn(1500))
		clicks := int64(0)
		for k := int64(0); k < n; k++ {
			if rng.Float64() < ctr {
				clicks++
			}
		}
		stats = append(stats, Stats{Impressions: n, Clicks: clicks})
	}
	prior := FitBetaPrior(stats, 100)
	if math.Abs(prior.PriorMean()-0.1) > 0.01 {
		t.Errorf("prior mean = %v, want ~0.1", prior.PriorMean())
	}
	// Concentration a+b should be in the right ballpark (40).
	k := prior.Alpha + prior.Beta
	if k < 15 || k > 120 {
		t.Errorf("prior concentration = %v, want near 40", k)
	}
}

// gammaDraw samples Gamma(shape, 1) via Marsaglia-Tsang for shape >= 1.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func TestFitBetaPriorDegenerate(t *testing.T) {
	// Too few creatives: fall back to the weak prior.
	p := FitBetaPrior([]Stats{{100, 10}}, 1)
	if p.Alpha != 1 || p.Beta != 9 {
		t.Errorf("fallback prior = %+v", p)
	}
	// No qualifying creatives at all.
	p = FitBetaPrior(nil, 1)
	if p.PriorMean() != 0.1 {
		t.Errorf("empty fallback mean = %v", p.PriorMean())
	}
}

func TestShrinkMovesTowardPrior(t *testing.T) {
	p := BetaPrior{Alpha: 10, Beta: 90} // mean 0.1
	// A lightly served creative with a lucky streak.
	lucky := Stats{Impressions: 10, Clicks: 5} // raw CTR 0.5
	shrunk := p.Shrink(lucky)
	if shrunk >= 0.2 {
		t.Errorf("light evidence should shrink hard: %v", shrunk)
	}
	// A heavily served creative keeps its CTR.
	heavy := Stats{Impressions: 100000, Clicks: 50000}
	if got := p.Shrink(heavy); math.Abs(got-0.5) > 0.01 {
		t.Errorf("heavy evidence should dominate: %v", got)
	}
}

func TestShrunkPairsReducesSpuriousLabels(t *testing.T) {
	// Two creatives with identical true CTR; with few impressions the
	// raw pair often gets a confident (spurious) serve-weight gap, while
	// the shrunk pair's gap is pulled towards zero.
	rng := rand.New(rand.NewSource(2))
	var groups []AdGroup
	for i := 0; i < 400; i++ {
		g := AdGroup{
			ID:        "g",
			Creatives: []Creative{MustNew("a", "alpha text"), MustNew("b", "beta text")},
		}
		for c := 0; c < 2; c++ {
			st := Stats{Impressions: 200}
			for k := 0; k < 200; k++ {
				if rng.Float64() < 0.10 {
					st.Clicks++
				}
			}
			g.Stats = append(g.Stats, st)
		}
		groups = append(groups, g)
	}
	shrunk := ShrunkPairs(groups, 100)
	if len(shrunk) == 0 {
		t.Fatal("no shrunk pairs")
	}
	var rawGap, shrunkGap float64
	var n float64
	for _, g := range groups {
		for _, p := range g.Pairs(100) {
			rawGap += math.Abs(p.SWR - p.SWS)
			n++
		}
	}
	for _, p := range shrunk {
		shrunkGap += math.Abs(p.SWR - p.SWS)
	}
	rawGap /= n
	shrunkGap /= float64(len(shrunk))
	if shrunkGap >= rawGap {
		t.Errorf("shrinkage did not reduce spurious gaps: raw %v vs shrunk %v", rawGap, shrunkGap)
	}
}

func TestShrunkPairsSkipsDuplicatesAndUnderserved(t *testing.T) {
	groups := []AdGroup{{
		Creatives: []Creative{MustNew("a", "same"), MustNew("b", "same"), MustNew("c", "other")},
		Stats:     []Stats{{500, 50}, {500, 40}, {5, 1}},
	}}
	pairs := ShrunkPairs(groups, 100)
	// (a,b) are text-identical; (x,c) underserved. Nothing qualifies.
	if len(pairs) != 0 {
		t.Errorf("got %d pairs, want 0: %+v", len(pairs), pairs)
	}
}
