// Package snippet defines the snippet (ad creative) types shared across the
// library: multi-line creatives, click/impression statistics, and creative
// pairs — the unit of input to the snippet classifier.
//
// Terminology follows the paper: an advertiser groups creatives targeting
// the same keyword into an adgroup; an impression is one display of a
// creative; CTR is clicks over impressions; the serve weight of a creative
// normalises its CTR by the adgroup's average CTR so that serve weights of
// creatives in different adgroups are comparable.
package snippet

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/textproc"
)

// MaxLines is the number of text lines in a creative. Sponsored search
// creatives in the paper are three-line texts (headline + two description
// lines).
const MaxLines = 3

// Creative is one ad creative: a short multi-line text belonging to an
// adgroup. The zero value is an empty creative.
type Creative struct {
	ID      string
	AdGroup string
	Lines   []string
}

// New returns a Creative with the given id and up to MaxLines lines.
// Extra lines are an error rather than silently dropped: position features
// are indexed by line number and truncation would corrupt them.
func New(id string, lines ...string) (Creative, error) {
	if len(lines) == 0 {
		return Creative{}, errors.New("snippet: creative needs at least one line")
	}
	if len(lines) > MaxLines {
		return Creative{}, fmt.Errorf("snippet: %d lines exceeds maximum %d", len(lines), MaxLines)
	}
	return Creative{ID: id, Lines: append([]string(nil), lines...)}, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(id string, lines ...string) Creative {
	c, err := New(id, lines...)
	if err != nil {
		panic(err)
	}
	return c
}

// Terms extracts the positioned n-gram terms (1..maxN) of the creative.
func (c Creative) Terms(maxN int) []textproc.Term {
	return textproc.ExtractTerms(c.Lines, maxN)
}

// Text renders the creative as a single string with " / " joining lines,
// for logs and messages.
func (c Creative) Text() string { return strings.Join(c.Lines, " / ") }

// Equal reports whether two creatives have identical normalised text,
// line by line. IDs are ignored: two creatives with the same words are
// the same snippet for modelling purposes.
func (c Creative) Equal(o Creative) bool {
	if len(c.Lines) != len(o.Lines) {
		return false
	}
	for i := range c.Lines {
		if textproc.Normalize(c.Lines[i]) != textproc.Normalize(o.Lines[i]) {
			return false
		}
	}
	return true
}

// DiffLines returns the 1-based indices of lines whose normalised text
// differs between c and o. Lines present in only one creative count as
// differing.
func (c Creative) DiffLines(o Creative) []int {
	n := len(c.Lines)
	if len(o.Lines) > n {
		n = len(o.Lines)
	}
	var diff []int
	for i := 0; i < n; i++ {
		var a, b string
		if i < len(c.Lines) {
			a = textproc.Normalize(c.Lines[i])
		}
		if i < len(o.Lines) {
			b = textproc.Normalize(o.Lines[i])
		}
		if a != b {
			diff = append(diff, i+1)
		}
	}
	return diff
}

// Stats holds the observed click/impression counts for a creative.
type Stats struct {
	Impressions int64
	Clicks      int64
}

// CTR returns clicks/impressions, or 0 for an unserved creative.
func (s Stats) CTR() float64 {
	if s.Impressions == 0 {
		return 0
	}
	return float64(s.Clicks) / float64(s.Impressions)
}

// Add accumulates another stats record.
func (s Stats) Add(o Stats) Stats {
	return Stats{Impressions: s.Impressions + o.Impressions, Clicks: s.Clicks + o.Clicks}
}

// ServeWeight returns the creative's CTR normalised by the adgroup's
// average CTR: the probability-like weight with which the creative would
// be served from its adgroup. Comparable across adgroups. Returns 0 when
// the adgroup CTR is 0.
func ServeWeight(creative Stats, adgroupCTR float64) float64 {
	if adgroupCTR == 0 {
		return 0
	}
	return creative.CTR() / adgroupCTR
}

// Pair is a pair of creatives from the same adgroup targeting the same
// keyword, together with their serve weights. Observed CTR differences
// within a pair can only be caused by the difference in creative text —
// the premise of the ADCORPUS dataset.
type Pair struct {
	R, S   Creative
	SWR    float64 // serve weight of R
	SWS    float64 // serve weight of S
	RStats Stats
	SStats Stats
}

// Label returns +1 if R has the higher serve weight, -1 if S does, and 0
// on a tie (ties are dropped from classifier training).
func (p Pair) Label() int {
	switch {
	case p.SWR > p.SWS:
		return +1
	case p.SWR < p.SWS:
		return -1
	default:
		return 0
	}
}

// Swap returns the pair with R and S exchanged (and the label therefore
// negated). Used to balance training data.
func (p Pair) Swap() Pair {
	return Pair{R: p.S, S: p.R, SWR: p.SWS, SWS: p.SWR, RStats: p.SStats, SStats: p.RStats}
}

// AdGroup is a keyword with the set of alternative creatives an advertiser
// provided for it, plus their observed stats.
type AdGroup struct {
	ID        string
	Keyword   string
	Creatives []Creative
	Stats     []Stats // parallel to Creatives
}

// CTR returns the adgroup's pooled click-through rate.
func (g AdGroup) CTR() float64 {
	var tot Stats
	for _, s := range g.Stats {
		tot = tot.Add(s)
	}
	return tot.CTR()
}

// Pairs enumerates all ordered-normalised creative pairs of the adgroup
// whose creatives differ in text, computing serve weights from the group
// CTR. Pairs where either creative has fewer than minImpressions are
// skipped: their serve weights are too noisy to label.
func (g AdGroup) Pairs(minImpressions int64) []Pair {
	groupCTR := g.CTR()
	var pairs []Pair
	for i := 0; i < len(g.Creatives); i++ {
		for j := i + 1; j < len(g.Creatives); j++ {
			if g.Stats[i].Impressions < minImpressions || g.Stats[j].Impressions < minImpressions {
				continue
			}
			if g.Creatives[i].Equal(g.Creatives[j]) {
				continue
			}
			pairs = append(pairs, Pair{
				R:      g.Creatives[i],
				S:      g.Creatives[j],
				SWR:    ServeWeight(g.Stats[i], groupCTR),
				SWS:    ServeWeight(g.Stats[j], groupCTR),
				RStats: g.Stats[i],
				SStats: g.Stats[j],
			})
		}
	}
	return pairs
}
