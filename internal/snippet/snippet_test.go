package snippet

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("c1"); err == nil {
		t.Error("New with no lines should fail")
	}
	if _, err := New("c1", "a", "b", "c", "d"); err == nil {
		t.Error("New with 4 lines should fail")
	}
	c, err := New("c1", "Line one", "Line two")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(c.Lines) != 2 {
		t.Errorf("got %d lines, want 2", len(c.Lines))
	}
}

func TestNewCopiesLines(t *testing.T) {
	src := []string{"a", "b"}
	c, _ := New("c1", src...)
	src[0] = "mutated"
	if c.Lines[0] != "a" {
		t.Error("New aliased the caller's slice")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid input")
		}
	}()
	MustNew("bad")
}

func TestEqualIgnoresCaseAndPunct(t *testing.T) {
	a := MustNew("a", "XYZ Airlines", "Great rates!")
	b := MustNew("b", "xyz airlines", "great rates")
	if !a.Equal(b) {
		t.Error("creatives equal up to normalisation should be Equal")
	}
	c := MustNew("c", "XYZ Airlines", "Great fares!")
	if a.Equal(c) {
		t.Error("different text should not be Equal")
	}
}

func TestDiffLines(t *testing.T) {
	r := MustNew("r", "XYZ Airlines", "Find cheap flights to New York.", "No reservation costs. Great rates")
	s := MustNew("s", "XYZ Airlines", "Flying to New York? Get discounts.", "No reservation costs. Great rates!")
	got := r.DiffLines(s)
	// Line 3 differs only by '!', which normalisation removes.
	want := []int{2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DiffLines = %v, want %v", got, want)
	}
}

func TestDiffLinesLengthMismatch(t *testing.T) {
	r := MustNew("r", "one line")
	s := MustNew("s", "one line", "second line")
	if got, want := r.DiffLines(s), []int{2}; !reflect.DeepEqual(got, want) {
		t.Errorf("DiffLines = %v, want %v", got, want)
	}
}

func TestCTR(t *testing.T) {
	tests := []struct {
		s    Stats
		want float64
	}{
		{Stats{0, 0}, 0},
		{Stats{100, 5}, 0.05},
		{Stats{1, 1}, 1},
	}
	for _, tt := range tests {
		if got := tt.s.CTR(); got != tt.want {
			t.Errorf("CTR(%+v) = %v, want %v", tt.s, got, tt.want)
		}
	}
}

func TestServeWeight(t *testing.T) {
	// Creative CTR 0.10 in a group averaging 0.05 -> serve weight 2.
	if got := ServeWeight(Stats{100, 10}, 0.05); math.Abs(got-2) > 1e-12 {
		t.Errorf("ServeWeight = %v, want 2", got)
	}
	if got := ServeWeight(Stats{100, 10}, 0); got != 0 {
		t.Errorf("ServeWeight with zero group CTR = %v, want 0", got)
	}
}

func TestPairLabelAndSwap(t *testing.T) {
	p := Pair{SWR: 1.5, SWS: 0.5}
	if p.Label() != +1 {
		t.Errorf("Label = %d, want +1", p.Label())
	}
	q := p.Swap()
	if q.Label() != -1 {
		t.Errorf("swapped Label = %d, want -1", q.Label())
	}
	tie := Pair{SWR: 1, SWS: 1}
	if tie.Label() != 0 {
		t.Errorf("tie Label = %d, want 0", tie.Label())
	}
}

func TestSwapInvolution(t *testing.T) {
	f := func(swr, sws float64, imps1, clicks1 uint16) bool {
		p := Pair{
			R: MustNew("r", "a"), S: MustNew("s", "b"),
			SWR: swr, SWS: sws,
			RStats: Stats{int64(imps1), int64(clicks1)},
		}
		return reflect.DeepEqual(p.Swap().Swap(), p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdGroupCTR(t *testing.T) {
	g := AdGroup{
		Creatives: []Creative{MustNew("a", "x"), MustNew("b", "y")},
		Stats:     []Stats{{100, 10}, {100, 0}},
	}
	if got := g.CTR(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("group CTR = %v, want 0.05", got)
	}
}

func TestAdGroupPairs(t *testing.T) {
	g := AdGroup{
		ID:      "g1",
		Keyword: "cheap flights",
		Creatives: []Creative{
			MustNew("a", "Find cheap flights"),
			MustNew("b", "Get flight discounts"),
			MustNew("c", "Find cheap flights"), // duplicate of a
		},
		Stats: []Stats{{1000, 50}, {1000, 30}, {1000, 40}},
	}
	pairs := g.Pairs(1)
	// (a,b) and (b,c) differ; (a,c) is a text duplicate and is skipped.
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(pairs))
	}
	p := pairs[0]
	if p.R.ID != "a" || p.S.ID != "b" {
		t.Errorf("first pair = (%s,%s), want (a,b)", p.R.ID, p.S.ID)
	}
	if p.Label() != +1 {
		t.Errorf("a (CTR .05) vs b (CTR .03): label = %d, want +1", p.Label())
	}
	// Serve weights of the two sides must straddle 1.
	if !(p.SWR > 1 && p.SWS < 1) {
		t.Errorf("serve weights = %v, %v; want >1 and <1", p.SWR, p.SWS)
	}
}

func TestAdGroupPairsMinImpressions(t *testing.T) {
	g := AdGroup{
		Creatives: []Creative{MustNew("a", "x"), MustNew("b", "y")},
		Stats:     []Stats{{5, 1}, {1000, 30}},
	}
	if got := g.Pairs(100); len(got) != 0 {
		t.Errorf("pair with underserved creative should be skipped, got %d", len(got))
	}
	if got := g.Pairs(1); len(got) != 1 {
		t.Errorf("got %d pairs at min=1, want 1", len(got))
	}
}

func TestTermsDelegation(t *testing.T) {
	c := MustNew("c", "Find cheap flights")
	terms := c.Terms(2)
	if len(terms) != 5 { // 3 unigrams + 2 bigrams
		t.Errorf("got %d terms, want 5", len(terms))
	}
}

func TestText(t *testing.T) {
	c := MustNew("c", "A", "B")
	if got, want := c.Text(), "A / B"; got != want {
		t.Errorf("Text = %q, want %q", got, want)
	}
}
