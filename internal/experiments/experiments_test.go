package experiments

import (
	"strings"
	"testing"

	"repro/internal/serp"
)

// tinySetup keeps the end-to-end experiment tests fast.
func tinySetup() Setup {
	return Setup{
		Seed:        77,
		Groups:      150,
		StatsGroups: 450,
		Impressions: 500,
		Folds:       3,
	}
}

func TestBuildDataDisjointAndNonEmpty(t *testing.T) {
	data := BuildData(tinySetup())
	if len(data.Pairs) == 0 {
		t.Fatal("no pairs")
	}
	if data.DB.Len() == 0 {
		t.Fatal("empty stats DB")
	}
	// Labels must be balanced-ish in sign before orientation.
	pos := 0
	for _, p := range data.Pairs {
		if p.Label() == 0 {
			t.Fatal("tied pair leaked through")
		}
		if p.Label() > 0 {
			pos++
		}
	}
	if pos == 0 || pos == len(data.Pairs) {
		t.Error("labels degenerate")
	}
}

func TestTable2SmokeAndShape(t *testing.T) {
	res, err := Table2(tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("got %d rows, want 6", len(res))
	}
	for i, r := range res {
		if r.Spec.Name != []string{"M1", "M2", "M3", "M4", "M5", "M6"}[i] {
			t.Errorf("row %d is %s", i, r.Spec.Name)
		}
		if r.Mean.F1 <= 0 || r.Mean.F1 >= 1 {
			t.Errorf("%s F1 = %v out of range", r.Spec.Name, r.Mean.F1)
		}
		if len(r.FoldMetrics) != 3 {
			t.Errorf("%s has %d folds", r.Spec.Name, len(r.FoldMetrics))
		}
	}
	// Even at this tiny scale the headline comparison should hold
	// directionally: the best positional model beats the bag of terms.
	best := res[1].Mean.Accuracy // M2
	if res[5].Mean.Accuracy > best {
		best = res[5].Mean.Accuracy // M6
	}
	if best <= res[0].Mean.Accuracy-0.02 {
		t.Errorf("no positional model beats M1: M1=%.3f best-positional=%.3f",
			res[0].Mean.Accuracy, best)
	}

	out := FormatTable2(res)
	if !strings.Contains(out, "TABLE 2") || !strings.Contains(out, "M6") {
		t.Errorf("FormatTable2 output malformed:\n%s", out)
	}
}

func TestFigure3Smoke(t *testing.T) {
	fig, err := Figure3(tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) < 2 {
		t.Fatalf("figure covers %d lines", len(fig.Lines))
	}
	for li, row := range fig.Lines {
		for pi, w := range row {
			if w < 0 || w > 1.5 {
				t.Errorf("line %d pos %d weight %v out of range", li+1, pi+1, w)
			}
		}
	}
	out := FormatFigure3(fig)
	if !strings.Contains(out, "FIGURE 3") || !strings.Contains(out, "line 1:") {
		t.Errorf("FormatFigure3 output malformed:\n%s", out)
	}
}

func TestTable4Smoke(t *testing.T) {
	rows, err := Table4(tinySetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Top <= 0 || r.Top >= 1 || r.RHS <= 0 || r.RHS >= 1 {
			t.Errorf("%s accuracies out of range: %+v", r.Spec.Name, r)
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "TABLE 4") || !strings.Contains(out, "Rhs") {
		t.Errorf("FormatTable4 output malformed:\n%s", out)
	}
}

func TestPaperReferenceValues(t *testing.T) {
	t2 := PaperTable2()
	if len(t2) != 6 {
		t.Fatal("paper table 2 incomplete")
	}
	if t2["M6"][2] != 0.712 || t2["M1"][2] != 0.570 {
		t.Error("paper F-measures transcribed wrong")
	}
	t4 := PaperTable4()
	if t4["M6"][0] != 0.714 || t4["M6"][1] != 0.711 {
		t.Error("paper table 4 transcribed wrong")
	}
	// Paper orderings that our reproduction tracks.
	if !(t2["M1"][2] < t2["M3"][2] && t2["M3"][2] < t2["M5"][2] &&
		t2["M5"][2] < t2["M2"][2] && t2["M2"][2] < t2["M4"][2] &&
		t2["M4"][2] < t2["M6"][2]) {
		t.Error("paper Table 2 ordering broken in transcription")
	}
}

func TestDefaultSetup(t *testing.T) {
	s := DefaultSetup().withDefaults()
	if s.Folds != 10 {
		t.Errorf("default folds = %d, want 10 (as in the paper)", s.Folds)
	}
	if s.StatsGroups <= s.Groups {
		t.Error("stats corpus should be larger than the evaluation corpus")
	}
	if s.Placement != serp.Top {
		t.Error("default placement should be top")
	}
}
