// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic ADCORPUS:
//
//   - Table 2: recall/precision/F-measure of creative classification for
//     the six feature ablations M1–M6 under 10-fold cross-validation;
//   - Figure 3: the learned term position weights for snippet lines
//     1–3, read out of the coupled model's position factor;
//   - Table 4: classification accuracy with top-block vs right-hand-side
//     ad placements.
//
// Absolute numbers differ from the paper (its substrate is Google's
// private ad corpus; ours is a simulator), but the comparisons the paper
// draws — position information helps every variant, rewrites beat bags
// of terms, the combined M6 wins, attention decays with micro-position,
// top accuracy slightly above RHS — are reproduced. EXPERIMENTS.md
// tracks paper-vs-measured values.
package experiments

import (
	"fmt"

	"repro/internal/adcorpus"
	"repro/internal/classifier"
	"repro/internal/featstats"
	"repro/internal/serp"
	"repro/internal/snippet"
)

// Setup bundles one experimental configuration: corpus scale, serving
// simulation, and learner options.
type Setup struct {
	// Seed drives corpus generation, simulation, fold assignment and
	// pair orientation.
	Seed int64
	// Groups is the number of adgroups in the evaluation corpus
	// (default 1200).
	Groups int
	// StatsGroups is the number of adgroups in the *disjoint* corpus the
	// feature statistics database is built from (default 3×Groups). The
	// paper computes statistics over the complete ADCORPUS, whose scale
	// makes any one pair's contribution to a feature's counts negligible;
	// at laptop scale the equivalent honest construction is a separate
	// statistics corpus, otherwise rare features leak their own pair's
	// label through the initial weights.
	StatsGroups int
	// Impressions per creative (default 800, the calibrated level at
	// which serve-weight noise keeps accuracy in the paper's band).
	Impressions int
	// Placement is the ad block to simulate (default Top).
	Placement serp.Placement
	// Folds is the cross-validation fold count (default 10, as in the
	// paper).
	Folds int
	// MinImpressions gates creatives out of pair extraction
	// (default 100).
	MinImpressions int64
	// Opt tunes the learners.
	Opt classifier.Options
}

// DefaultSetup returns the configuration used for the reported numbers.
func DefaultSetup() Setup {
	return Setup{
		Seed:        2019, // ICDE year, fittingly
		Groups:      1200,
		Impressions: 800,
		Placement:   serp.Top,
		Folds:       10,
	}
}

func (s Setup) withDefaults() Setup {
	if s.Groups <= 0 {
		s.Groups = 1200
	}
	if s.StatsGroups <= 0 {
		s.StatsGroups = 5 * s.Groups
	}
	if s.Impressions <= 0 {
		s.Impressions = 800
	}
	if s.Folds <= 0 {
		s.Folds = 10
	}
	if s.MinImpressions <= 0 {
		s.MinImpressions = 100
	}
	return s
}

// Data is the materialised experimental data: labelled pairs and the
// phase-one statistics database.
type Data struct {
	Pairs []snippet.Pair
	DB    *featstats.DB
}

// BuildData generates the evaluation corpus and the disjoint statistics
// corpus, simulates serving on both, and runs phase one on the
// statistics corpus only.
func BuildData(s Setup) *Data {
	s = s.withDefaults()
	lex := adcorpus.DefaultLexicon()
	ex := classifier.NewExtractor()
	ex.MinImpressions = s.MinImpressions

	statsCorpus := adcorpus.Generate(adcorpus.Config{Seed: s.Seed + 100, Groups: s.StatsGroups}, lex)
	statsGroups := serp.New(serp.Config{
		Seed:        s.Seed + 101,
		Impressions: s.Impressions,
		Placement:   s.Placement,
	}).Run(statsCorpus)
	db := ex.BuildDB(statsGroups)

	evalCorpus := adcorpus.Generate(adcorpus.Config{Seed: s.Seed, Groups: s.Groups}, lex)
	evalGroups := serp.New(serp.Config{
		Seed:        s.Seed + 1,
		Impressions: s.Impressions,
		Placement:   s.Placement,
	}).Run(evalCorpus)

	return &Data{Pairs: ex.Pairs(evalGroups), DB: db}
}

// Table2 runs the six-model ablation of Table 2 and returns one result
// per model, in order M1..M6.
func Table2(s Setup) ([]classifier.Result, error) {
	s = s.withDefaults()
	data := BuildData(s)
	return Table2On(s, data)
}

// Table2On runs Table 2 on prebuilt data (so Table 4 can reuse builds).
func Table2On(s Setup, data *Data) ([]classifier.Result, error) {
	s = s.withDefaults()
	var out []classifier.Result
	for _, spec := range classifier.Specs() {
		res, err := classifier.CrossValidate(spec, data.Pairs, data.DB, s.Folds, s.Seed+2, s.Opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Figure3 trains the full model M6 on all pairs and returns the learned
// term position weights per line: Lines[l][p] is the weight of position
// p+1 on line l+1. The planted attention decays within and across lines;
// the learned table should recover that shape.
type Figure3Data struct {
	Lines [][]float64
}

// figure3MinSupport is the evidence floor for reporting a learned
// position weight: cells backed by fewer occurrences are omitted, as a
// real study would bin or drop them.
const figure3MinSupport = 60

// Figure3 regenerates the paper's Figure 3.
func Figure3(s Setup) (*Figure3Data, error) {
	s = s.withDefaults()
	data := BuildData(s)
	pipe := classifier.NewPipeline(classifier.M6, data.DB)
	pipe.Seed = s.Seed + 2
	ds := pipe.Dataset(data.Pairs)
	opt := s.Opt
	if opt.Rounds == 0 {
		opt.Rounds = 10 // the figure reads P directly; let it converge
	}
	if opt.PosAnchor == 0 {
		// The figure reports P itself, so smooth rare cells toward the
		// corpus prior (the tables run unanchored for accuracy).
		opt.PosAnchor = 0.05
	}
	model, err := classifier.Train(ds, nil, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 3: %w", err)
	}

	// Blank out cells without enough occurrences to mean anything, then
	// trim trailing empty cells per line.
	support := ds.PosSupport()
	supported := func(line, pos int) bool {
		for id := 0; id < ds.PosVocab.Len(); id++ {
			p, l, ok := featstats.ParsePosKey(ds.PosVocab.Name(id))
			if ok && l == line && p == pos {
				return support[id] >= figure3MinSupport
			}
		}
		return false
	}
	lines := model.PositionWeights()
	for li := range lines {
		last := -1
		for pi := range lines[li] {
			if supported(li+1, pi+1) {
				last = pi
			} else {
				lines[li][pi] = 0
			}
		}
		lines[li] = lines[li][:last+1]
	}
	return &Figure3Data{Lines: lines}, nil
}

// Table4Row is one row of Table 4: accuracy at top vs RHS placement.
type Table4Row struct {
	Spec classifier.ModelSpec
	Top  float64
	RHS  float64
}

// Table4 reruns the ablation with top-block and RHS serving.
func Table4(s Setup) ([]Table4Row, error) {
	s = s.withDefaults()
	top := s
	top.Placement = serp.Top
	rhs := s
	rhs.Placement = serp.RHS

	topRes, err := Table2On(top, BuildData(top))
	if err != nil {
		return nil, fmt.Errorf("experiments: table 4 top: %w", err)
	}
	rhsRes, err := Table2On(rhs, BuildData(rhs))
	if err != nil {
		return nil, fmt.Errorf("experiments: table 4 rhs: %w", err)
	}
	rows := make([]Table4Row, len(topRes))
	for i := range topRes {
		rows[i] = Table4Row{
			Spec: topRes[i].Spec,
			Top:  topRes[i].Mean.Accuracy,
			RHS:  rhsRes[i].Mean.Accuracy,
		}
	}
	return rows, nil
}

// PaperTable2 returns the values published in Table 2 of the paper, for
// side-by-side reporting (recall, precision, F-measure per model).
func PaperTable2() map[string][3]float64 {
	return map[string][3]float64{
		"M1": {0.559, 0.582, 0.570},
		"M2": {0.644, 0.663, 0.653},
		"M3": {0.590, 0.612, 0.601},
		"M4": {0.700, 0.719, 0.709},
		"M5": {0.597, 0.618, 0.607},
		"M6": {0.704, 0.721, 0.712},
	}
}

// PaperTable4 returns the published Table 4 accuracies (top, rhs).
func PaperTable4() map[string][2]float64 {
	return map[string][2]float64{
		"M1": {0.571, 0.570},
		"M2": {0.657, 0.651},
		"M3": {0.602, 0.599},
		"M4": {0.711, 0.708},
		"M5": {0.609, 0.606},
		"M6": {0.714, 0.711},
	}
}
