package experiments

import (
	"fmt"
	"strings"

	"repro/internal/classifier"
)

// FormatTable2 renders the ablation results in the paper's Table 2
// layout, with the published numbers alongside for comparison.
func FormatTable2(results []classifier.Result) string {
	var b strings.Builder
	paper := PaperTable2()
	fmt.Fprintf(&b, "TABLE 2: ACCURACY OF CREATIVE CLASSIFICATION USING DIFFERENT SETS OF FEATURES\n")
	fmt.Fprintf(&b, "%-30s %8s %10s %10s   %s\n", "Feature", "Recall", "Precision", "F-Measure", "(paper R/P/F)")
	for _, r := range results {
		p := paper[r.Spec.Name]
		fmt.Fprintf(&b, "%-30s %7.1f%% %9.1f%% %10.3f   (%.1f%% / %.1f%% / %.3f)\n",
			r.Spec.Name+": "+r.Spec.Description,
			r.Mean.Recall*100, r.Mean.Precision*100, r.Mean.F1,
			p[0]*100, p[1]*100, p[2])
	}
	return b.String()
}

// FormatFigure3 renders the learned term position weights as an ASCII
// chart, one series per snippet line, mirroring Figure 3.
func FormatFigure3(fig *Figure3Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 3: LEARNED TERM POSITION WEIGHTS (LINE 1,2,3)\n")
	const barWidth = 40
	for li, row := range fig.Lines {
		if len(row) == 0 {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n", li+1)
		for pi, w := range row {
			n := int(w*barWidth + 0.5)
			if n < 0 {
				n = 0
			}
			if n > barWidth {
				n = barWidth
			}
			fmt.Fprintf(&b, "  pos %2d  %6.3f  %s\n", pi+1, w, strings.Repeat("#", n))
		}
	}
	return b.String()
}

// FormatTable4 renders the top-vs-RHS accuracies in the paper's Table 4
// layout, with the published numbers alongside.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	paper := PaperTable4()
	fmt.Fprintf(&b, "TABLE 4: ACCURACY OF CREATIVE CLASSIFICATION IN DIFFERENT CONFIGURATION (TOP VS. RHS)\n")
	fmt.Fprintf(&b, "%-30s %8s %8s   %s\n", "Feature", "Top", "Rhs", "(paper Top/Rhs)")
	for _, r := range rows {
		p := paper[r.Spec.Name]
		fmt.Fprintf(&b, "%-30s %7.1f%% %7.1f%%   (%.1f%% / %.1f%%)\n",
			r.Spec.Name+": "+r.Spec.Description,
			r.Top*100, r.RHS*100,
			p[0]*100, p[1]*100)
	}
	return b.String()
}

// FormatSummary renders a compact cross-experiment digest used by the
// experiments binary.
func FormatSummary(t2 []classifier.Result, fig *Figure3Data, t4 []Table4Row) string {
	var b strings.Builder
	b.WriteString(FormatTable2(t2))
	b.WriteString("\n")
	if fig != nil {
		b.WriteString(FormatFigure3(fig))
		b.WriteString("\n")
	}
	if t4 != nil {
		b.WriteString(FormatTable4(t4))
	}
	return b.String()
}
