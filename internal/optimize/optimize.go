// Package optimize implements the paper's second future-work direction:
// "automatic generation of snippets". Given a micro-browsing model —
// per-term relevance plus positional attention — it searches the edit
// space of a creative (replace a phrase, insert a phrase, move a phrase
// to a stronger micro-position) for the variants the model predicts will
// raise click-through rate.
//
// The search is deliberately conservative: it proposes edits built from
// an explicit phrase inventory (in practice, the high-lift phrases mined
// from the rewrite database; see examples/rewritemining), so every
// suggestion is something an advertiser plausibly writes.
package optimize

import (
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/snippet"
	"repro/internal/textproc"
)

// Edit is one proposed change to a creative. The JSON tags are the
// /v1/optimize wire shape.
type Edit struct {
	// Kind is "replace", "insert" or "move".
	Kind string `json:"kind"`
	// Line is the 1-based line the edit touches.
	Line int `json:"line"`
	// Old and New are the phrase texts involved ("" where not
	// applicable: inserts have no Old).
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
}

// Candidate is a scored variant of the base creative.
type Candidate struct {
	Creative snippet.Creative
	Edit     Edit
	// Score is the micro-browsing pair score of the variant against the
	// base (Eq. 5): positive means the model predicts a CTR lift.
	Score float64
}

// Optimizer proposes model-guided creative improvements.
//
// Scoring happens in log-odds space: each term carries a CTR-lift weight
// (log odds, positive for phrases that pull clicks — e.g. the statistics
// database's LogOdds, or a trained classifier's term weights), and a
// variant's score is the attention-weighted sum of its term weights.
// This is the additive form of Eq. 5 that the snippet classifier learns;
// the product-form Eq. 3 relevances (always ≤ 1) cannot drive generation
// because under them every deletion "improves" a snippet.
//
// When Model is set it takes over variant scoring: a candidate's score
// is then the exact Eq. 5 pair score (expected log-probability
// difference against the base) computed through the compiled model's
// amortised candidate-set pass — every variant shares the base's
// tokenised lines, so the search loop pays per distinct edited line,
// not per variant. The same conservatism note applies: the edit space
// keeps deletions bounded, so the product-form objective cannot strip a
// snippet bare.
//
// An Optimizer reuses internal scoring arenas across calls and is owned
// by one goroutine at a time.
type Optimizer struct {
	// Attention weighs each micro-position; required for Weights-based
	// scoring.
	Attention core.Attention
	// Weights maps term text to its CTR-lift log odds. Unknown terms
	// weigh zero.
	Weights map[string]float64
	// Inventory is the phrase pool edits draw from.
	Inventory []string
	// MaxN is the n-gram ceiling for scoring (default 3).
	MaxN int
	// MaxTokensPerLine rejects edits that would overflow a line
	// (default 12).
	MaxTokensPerLine int
	// Model, when non-nil, scores variants through the compiled
	// micro-browsing model instead of Weights.
	Model *core.CompiledModel

	// Reused working state of the scoring pass.
	topk    engine.TopK
	scratch core.CandidateScratch
	scores  []core.CandidateScore
	cands   []Candidate
	lines   [][]string
}

// New returns an optimizer over the attention curve, term weights and
// phrase inventory.
func New(att core.Attention, weights map[string]float64, inventory []string) *Optimizer {
	return &Optimizer{Attention: att, Weights: weights, Inventory: inventory, MaxN: 3, MaxTokensPerLine: 12}
}

// NewModelGuided returns an optimizer that scores variants through a
// compiled micro-browsing model (the /v1/optimize serving path).
func NewModelGuided(m *core.CompiledModel, inventory []string) *Optimizer {
	return &Optimizer{Model: m, Inventory: inventory, MaxN: 3, MaxTokensPerLine: 12}
}

func (o *Optimizer) maxN() int {
	if o.MaxN <= 0 {
		return 3
	}
	return o.MaxN
}

func (o *Optimizer) maxTokens() int {
	if o.MaxTokensPerLine <= 0 {
		return 12
	}
	return o.MaxTokensPerLine
}

// Score returns the attention-weighted lift score of a creative. Each
// distinct phrase counts once, at its most-attended occurrence:
// repeating "20% off" on every line does not multiply its effect on the
// reader.
func (o *Optimizer) Score(c snippet.Creative) float64 {
	best := make(map[string]float64)
	for _, t := range c.Terms(o.maxN()) {
		if _, ok := o.Weights[t.Text]; !ok {
			continue
		}
		att := o.Attention.Examine(t.Line, t.Pos)
		if att > best[t.Text] {
			best[t.Text] = att
		}
	}
	var s float64
	for text, att := range best {
		s += att * o.Weights[text]
	}
	return s
}

// score returns the predicted lift of variant over base.
func (o *Optimizer) score(variant, base snippet.Creative) float64 {
	return o.Score(variant) - o.Score(base)
}

// containsPhrase reports whether the normalised line contains the phrase
// as a token subsequence, returning its token position.
func containsPhrase(line, phrase string) (pos int, ok bool) {
	toks := textproc.Tokenize(line)
	want := strings.Fields(textproc.Normalize(phrase))
	if len(want) == 0 || len(toks) < len(want) {
		return 0, false
	}
	for i := 0; i+len(want) <= len(toks); i++ {
		match := true
		for j, w := range want {
			if toks[i+j].Text != w {
				match = false
				break
			}
		}
		if match {
			return i + 1, true
		}
	}
	return 0, false
}

// replaceInLine substitutes the first occurrence of old with new in the
// normalised token stream of the line.
func replaceInLine(line, old, new string) (string, bool) {
	toks := textproc.Tokenize(line)
	oldToks := strings.Fields(textproc.Normalize(old))
	pos, ok := containsPhrase(line, old)
	if !ok {
		return "", false
	}
	var out []string
	for i := 0; i < len(toks); i++ {
		if i == pos-1 {
			if new != "" {
				out = append(out, textproc.Normalize(new))
			}
			i += len(oldToks) - 1
			continue
		}
		out = append(out, toks[i].Text)
	}
	return strings.Join(out, " "), true
}

// generate enumerates the single-edit variants of base that respect
// the per-line token budget, calling emit for each.
func (o *Optimizer) generate(base snippet.Creative, emit func(snippet.Creative, Edit)) {
	try := func(c snippet.Creative, e Edit) {
		for _, line := range c.Lines {
			if len(textproc.Tokenize(line)) > o.maxTokens() {
				return
			}
		}
		emit(c, e)
	}

	for li, line := range base.Lines {
		// Replacements: any inventory phrase present in the line may be
		// rewritten to any other inventory phrase (or dropped).
		for _, old := range o.Inventory {
			if _, ok := containsPhrase(line, old); !ok {
				continue
			}
			for _, new := range o.Inventory {
				if new == old {
					continue
				}
				if newLine, ok := replaceInLine(line, old, new); ok {
					v := cloneWithLine(base, li, newLine)
					try(v, Edit{Kind: "replace", Line: li + 1, Old: old, New: new})
				}
			}
			// Dropping the phrase entirely (e.g. removing small print).
			if newLine, ok := replaceInLine(line, old, ""); ok && strings.TrimSpace(newLine) != "" {
				v := cloneWithLine(base, li, newLine)
				try(v, Edit{Kind: "replace", Line: li + 1, Old: old, New: ""})
			}
			// Moves: relocate the phrase to the front of its line.
			if pos, _ := containsPhrase(line, old); pos > 1 {
				if stripped, ok := replaceInLine(line, old, ""); ok {
					moved := strings.TrimSpace(textproc.Normalize(old) + " " + stripped)
					v := cloneWithLine(base, li, moved)
					try(v, Edit{Kind: "move", Line: li + 1, Old: old, New: old})
				}
			}
		}
		// Insertions at the front of the line.
		for _, phrase := range o.Inventory {
			if _, ok := containsPhrase(line, phrase); ok {
				continue
			}
			v := cloneWithLine(base, li, textproc.Normalize(phrase)+" "+line)
			try(v, Edit{Kind: "insert", Line: li + 1, New: phrase})
		}
	}
}

// Generate enumerates the single-edit variants of the creative,
// unscored — the candidate half of the /v1/optimize server path, where
// scoring happens downstream through the engine's candidate-set pass.
func (o *Optimizer) Generate(base snippet.Creative) []Candidate {
	var cands []Candidate
	o.generate(base, func(c snippet.Creative, e Edit) {
		cands = append(cands, Candidate{Creative: c, Edit: e})
	})
	return cands
}

// Propose enumerates single-edit variants of the creative and returns
// those the model scores above the base, best first.
func (o *Optimizer) Propose(base snippet.Creative) []Candidate {
	return o.ProposeTop(base, 0)
}

// ProposeTop is Propose bounded to the k best variants (k <= 0 keeps
// every improving one). Selection runs through the engine's bounded
// top-k heap instead of a full sort over the scored variants; equal
// scores break toward the earlier-generated edit.
func (o *Optimizer) ProposeTop(base snippet.Creative, k int) []Candidate {
	o.cands = o.cands[:0]
	o.generate(base, func(c snippet.Creative, e Edit) {
		o.cands = append(o.cands, Candidate{Creative: c, Edit: e})
	})

	if o.Model != nil {
		// One amortised candidate-set pass scores the base and every
		// variant; the pair score is the Eq. 5 difference.
		o.lines = o.lines[:0]
		o.lines = append(o.lines, base.Lines)
		for i := range o.cands {
			o.lines = append(o.lines, o.cands[i].Creative.Lines)
		}
		o.scores = o.Model.ScoreCandidates(o.lines, o.maxN(), &o.scratch, o.scores)
		baseScore := o.scores[0].Score
		for i := range o.cands {
			o.cands[i].Score = o.scores[i+1].Score - baseScore
		}
	} else {
		baseScore := o.Score(base)
		for i := range o.cands {
			o.cands[i].Score = o.Score(o.cands[i].Creative) - baseScore
		}
	}

	if k <= 0 {
		k = len(o.cands)
	}
	o.topk.Reset(k)
	for i := range o.cands {
		if o.cands[i].Score > 1e-9 {
			o.topk.Offer(i, o.cands[i].Score)
		}
	}
	idx, _ := o.topk.Sorted()
	out := make([]Candidate, len(idx))
	for r, i := range idx {
		out[r] = o.cands[i]
	}
	return out
}

// HillClimb applies the best available edit up to steps times, returning
// the improved creative, the edits taken, and the total predicted lift
// (sum of per-step pair scores against each step's base).
func (o *Optimizer) HillClimb(base snippet.Creative, steps int) (snippet.Creative, []Edit, float64) {
	cur := base
	var edits []Edit
	var total float64
	for i := 0; i < steps; i++ {
		cands := o.ProposeTop(cur, 1)
		if len(cands) == 0 {
			break
		}
		best := cands[0]
		cur = best.Creative
		edits = append(edits, best.Edit)
		total += best.Score
	}
	return cur, edits, total
}

// cloneWithLine copies the creative with line index li replaced.
func cloneWithLine(c snippet.Creative, li int, line string) snippet.Creative {
	lines := append([]string(nil), c.Lines...)
	lines[li] = strings.TrimSpace(line)
	return snippet.Creative{ID: c.ID + "+", Lines: lines}
}
