package optimize

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/snippet"
)

// testAttention and testWeights plant clear lift differences and
// decaying attention.
func testAttention() core.Attention {
	return core.GeometricAttention{
		LineWeights: []float64{0.95, 0.65, 0.35},
		Decay:       0.75,
	}
}

func testWeights() map[string]float64 {
	return map[string]float64{
		"20% off":     +1.5,
		"learn more":  -0.5,
		"terms apply": -1.2,
		"great rates": +0.6,
	}
}

func inventory() []string {
	return []string{"20% off", "learn more", "terms apply", "great rates"}
}

func TestProposeUpgradesWeakHook(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes",
		"great rates")
	cands := o.Propose(base)
	if len(cands) == 0 {
		t.Fatal("no improvements proposed")
	}
	best := cands[0]
	if best.Edit.Kind != "replace" && best.Edit.Kind != "insert" {
		t.Errorf("best edit kind = %q", best.Edit.Kind)
	}
	// The strongest proposal must involve the highest-appeal phrase.
	if !strings.Contains(best.Creative.Text(), "20% off") {
		t.Errorf("best variant lacks the strongest phrase: %s", best.Creative.Text())
	}
	if best.Score <= 0 {
		t.Errorf("best score %v", best.Score)
	}
}

func TestProposeDropsSmallPrint(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store 20% off",
		"running shoes terms apply",
		"great rates")
	cands := o.Propose(base)
	// Some proposal should remove or replace "terms apply".
	found := false
	for _, c := range cands {
		if c.Edit.Old == "terms apply" {
			found = true
			if strings.Contains(c.Creative.Lines[1], "terms apply") && c.Edit.New == "" {
				t.Errorf("drop edit did not remove the phrase: %q", c.Creative.Lines[1])
			}
		}
	}
	if !found {
		t.Error("no proposal touches the negative phrase")
	}
}

func TestProposeMovesPhraseForward(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	// Strong phrase stuck at the end of line 1.
	base := snippet.MustNew("base",
		"acme store brand words 20% off",
		"running shoes",
		"great rates")
	cands := o.Propose(base)
	for _, c := range cands {
		if c.Edit.Kind == "move" && c.Edit.Old == "20% off" {
			if !strings.HasPrefix(c.Creative.Lines[0], "20% off") {
				t.Errorf("move did not front the phrase: %q", c.Creative.Lines[0])
			}
			if c.Score <= 0 {
				t.Errorf("fronting a strong phrase should score positive: %v", c.Score)
			}
			return
		}
	}
	t.Error("no move proposal for the mis-placed strong phrase")
}

func TestHillClimbImproves(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes terms apply",
		"plain line")
	improved, edits, lift := o.HillClimb(base, 4)
	if len(edits) == 0 {
		t.Fatal("hill climb made no edits")
	}
	if lift <= 0 {
		t.Errorf("total lift %v", lift)
	}
	// The final creative must outscore the base directly.
	if o.Score(improved) <= o.Score(base) {
		t.Error("hill-climbed creative does not beat the base")
	}
}

func TestHillClimbStopsAtOptimum(t *testing.T) {
	o := New(testAttention(), testWeights(), []string{"20% off"})
	// Already has the only inventory phrase at the best position.
	base := snippet.MustNew("base", "20% off", "shoes", "rates")
	_, edits, _ := o.HillClimb(base, 5)
	for _, e := range edits {
		if e.Kind == "insert" && e.New == "20% off" {
			t.Errorf("re-inserted an already present phrase: %+v", e)
		}
	}
}

func TestProposeRespectsLineBudget(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	o.MaxTokensPerLine = 4
	base := snippet.MustNew("base", "one two three four", "shoes", "rates")
	for _, c := range o.Propose(base) {
		if c.Edit.Line == 1 && c.Edit.Kind == "insert" {
			t.Errorf("insert overflowed the token budget: %+v", c.Edit)
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	pos, ok := containsPhrase("Find cheap flights to Rome", "cheap flights")
	if !ok || pos != 2 {
		t.Errorf("containsPhrase = %d,%v want 2,true", pos, ok)
	}
	if _, ok := containsPhrase("Find cheap flights", "rome"); ok {
		t.Error("absent phrase reported present")
	}
	if _, ok := containsPhrase("short", "much longer phrase"); ok {
		t.Error("overlong phrase reported present")
	}
}

func TestReplaceInLine(t *testing.T) {
	out, ok := replaceInLine("find cheap flights today", "cheap flights", "great deals")
	if !ok || out != "find great deals today" {
		t.Errorf("replaceInLine = %q,%v", out, ok)
	}
	out, ok = replaceInLine("find cheap flights", "cheap flights", "")
	if !ok || out != "find" {
		t.Errorf("drop = %q,%v", out, ok)
	}
	if _, ok := replaceInLine("plain line", "absent", "x"); ok {
		t.Error("replacement of absent phrase succeeded")
	}
}

func BenchmarkPropose(b *testing.B) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes terms apply",
		"great rates always")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Propose(base)
	}
}
