package optimize

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/snippet"
	"repro/internal/textproc"
)

// testAttention and testWeights plant clear lift differences and
// decaying attention.
func testAttention() core.Attention {
	return core.GeometricAttention{
		LineWeights: []float64{0.95, 0.65, 0.35},
		Decay:       0.75,
	}
}

func testWeights() map[string]float64 {
	return map[string]float64{
		"20% off":     +1.5,
		"learn more":  -0.5,
		"terms apply": -1.2,
		"great rates": +0.6,
	}
}

func inventory() []string {
	return []string{"20% off", "learn more", "terms apply", "great rates"}
}

func TestProposeUpgradesWeakHook(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes",
		"great rates")
	cands := o.Propose(base)
	if len(cands) == 0 {
		t.Fatal("no improvements proposed")
	}
	best := cands[0]
	if best.Edit.Kind != "replace" && best.Edit.Kind != "insert" {
		t.Errorf("best edit kind = %q", best.Edit.Kind)
	}
	// The strongest proposal must involve the highest-appeal phrase.
	if !strings.Contains(best.Creative.Text(), "20% off") {
		t.Errorf("best variant lacks the strongest phrase: %s", best.Creative.Text())
	}
	if best.Score <= 0 {
		t.Errorf("best score %v", best.Score)
	}
}

func TestProposeDropsSmallPrint(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store 20% off",
		"running shoes terms apply",
		"great rates")
	cands := o.Propose(base)
	// Some proposal should remove or replace "terms apply".
	found := false
	for _, c := range cands {
		if c.Edit.Old == "terms apply" {
			found = true
			if strings.Contains(c.Creative.Lines[1], "terms apply") && c.Edit.New == "" {
				t.Errorf("drop edit did not remove the phrase: %q", c.Creative.Lines[1])
			}
		}
	}
	if !found {
		t.Error("no proposal touches the negative phrase")
	}
}

func TestProposeMovesPhraseForward(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	// Strong phrase stuck at the end of line 1.
	base := snippet.MustNew("base",
		"acme store brand words 20% off",
		"running shoes",
		"great rates")
	cands := o.Propose(base)
	for _, c := range cands {
		if c.Edit.Kind == "move" && c.Edit.Old == "20% off" {
			if !strings.HasPrefix(c.Creative.Lines[0], "20% off") {
				t.Errorf("move did not front the phrase: %q", c.Creative.Lines[0])
			}
			if c.Score <= 0 {
				t.Errorf("fronting a strong phrase should score positive: %v", c.Score)
			}
			return
		}
	}
	t.Error("no move proposal for the mis-placed strong phrase")
}

func TestHillClimbImproves(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes terms apply",
		"plain line")
	improved, edits, lift := o.HillClimb(base, 4)
	if len(edits) == 0 {
		t.Fatal("hill climb made no edits")
	}
	if lift <= 0 {
		t.Errorf("total lift %v", lift)
	}
	// The final creative must outscore the base directly.
	if o.Score(improved) <= o.Score(base) {
		t.Error("hill-climbed creative does not beat the base")
	}
}

func TestHillClimbStopsAtOptimum(t *testing.T) {
	o := New(testAttention(), testWeights(), []string{"20% off"})
	// Already has the only inventory phrase at the best position.
	base := snippet.MustNew("base", "20% off", "shoes", "rates")
	_, edits, _ := o.HillClimb(base, 5)
	for _, e := range edits {
		if e.Kind == "insert" && e.New == "20% off" {
			t.Errorf("re-inserted an already present phrase: %+v", e)
		}
	}
}

func TestProposeRespectsLineBudget(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	o.MaxTokensPerLine = 4
	base := snippet.MustNew("base", "one two three four", "shoes", "rates")
	for _, c := range o.Propose(base) {
		if c.Edit.Line == 1 && c.Edit.Kind == "insert" {
			t.Errorf("insert overflowed the token budget: %+v", c.Edit)
		}
	}
}

func TestContainsPhrase(t *testing.T) {
	pos, ok := containsPhrase("Find cheap flights to Rome", "cheap flights")
	if !ok || pos != 2 {
		t.Errorf("containsPhrase = %d,%v want 2,true", pos, ok)
	}
	if _, ok := containsPhrase("Find cheap flights", "rome"); ok {
		t.Error("absent phrase reported present")
	}
	if _, ok := containsPhrase("short", "much longer phrase"); ok {
		t.Error("overlong phrase reported present")
	}
}

func TestReplaceInLine(t *testing.T) {
	out, ok := replaceInLine("find cheap flights today", "cheap flights", "great deals")
	if !ok || out != "find great deals today" {
		t.Errorf("replaceInLine = %q,%v", out, ok)
	}
	out, ok = replaceInLine("find cheap flights", "cheap flights", "")
	if !ok || out != "find" {
		t.Errorf("drop = %q,%v", out, ok)
	}
	if _, ok := replaceInLine("plain line", "absent", "x"); ok {
		t.Error("replacement of absent phrase succeeded")
	}
}

func BenchmarkPropose(b *testing.B) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes terms apply",
		"great rates always")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Propose(base)
	}
}

func TestProposeTopBounds(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes terms apply",
		"great rates")
	all := o.Propose(base)
	if len(all) < 3 {
		t.Fatalf("workload too small to test bounding: %d candidates", len(all))
	}
	top := o.ProposeTop(base, 2)
	if len(top) != 2 {
		t.Fatalf("ProposeTop(2) returned %d candidates", len(top))
	}
	for i := range top {
		// Weights scoring sums over map iteration order, so scores of
		// separate calls agree only to float re-association.
		if math.Abs(top[i].Score-all[i].Score) > 1e-9 {
			t.Errorf("rank %d: bounded score %v, full score %v", i, top[i].Score, all[i].Score)
		}
	}
	// Scores must be positive (improving) and descending.
	for i, c := range all {
		if c.Score <= 1e-9 {
			t.Errorf("candidate %d not improving: %v", i, c.Score)
		}
		if i > 0 && all[i-1].Score < c.Score {
			t.Errorf("candidates not sorted: %v before %v", all[i-1].Score, c.Score)
		}
	}
}

func TestGenerateMatchesProposeSpace(t *testing.T) {
	o := New(testAttention(), testWeights(), inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes terms apply",
		"great rates")
	gen := o.Generate(base)
	if len(gen) == 0 {
		t.Fatal("no variants generated")
	}
	// Every proposed (improving) candidate must come from the generated
	// edit space.
	seen := make(map[string]bool, len(gen))
	for _, c := range gen {
		seen[c.Creative.Text()] = true
		if c.Score != 0 {
			t.Fatalf("Generate scored a candidate: %+v", c)
		}
	}
	for _, c := range o.Propose(base) {
		if !seen[c.Creative.Text()] {
			t.Errorf("proposed variant outside the generated space: %s", c.Creative.Text())
		}
	}
}

// TestModelGuidedPropose pins the Model routing: candidate scores are
// exact Eq. 5 pair differences under the compiled model, and ranking
// follows them.
func TestModelGuidedPropose(t *testing.T) {
	m := core.NewModel(testAttention())
	m.DefaultRelevance = 0.5
	m.Relevance["20% off"] = 0.95
	m.Relevance["learn more"] = 0.35
	m.Relevance["terms apply"] = 0.1
	m.Relevance["great rates"] = 0.7
	cm := m.Compile()

	o := NewModelGuided(cm, inventory())
	base := snippet.MustNew("base",
		"acme store learn more",
		"running shoes",
		"great rates")
	cands := o.Propose(base)
	if len(cands) == 0 {
		t.Fatal("model-guided search proposed nothing")
	}

	var sc textproc.Scratch
	_, baseScore := cm.ScoreSnippet(base.Lines, 3, &sc)
	prev := math.Inf(1)
	for i, c := range cands {
		_, vs := cm.ScoreSnippet(c.Creative.Lines, 3, &sc)
		want := vs - baseScore
		if math.Abs(c.Score-want) > 1e-12 {
			t.Errorf("candidate %d: score %v, want pair score %v", i, c.Score, want)
		}
		if c.Score <= 1e-9 {
			t.Errorf("candidate %d not improving: %v", i, c.Score)
		}
		if c.Score > prev {
			t.Errorf("candidate %d breaks descending order: %v after %v", i, c.Score, prev)
		}
		prev = c.Score
	}
	// Under the product-form objective the top edits remove weak
	// phrases (the documented deletion bias the bounded edit space
	// contains); the strong phrase must still surface somewhere with a
	// predicted lift.
	found := false
	for _, c := range cands {
		if c.Edit.New == "20% off" && c.Score > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no improving model-guided variant introduces the strongest phrase")
	}
}

func TestModelGuidedHillClimb(t *testing.T) {
	m := core.NewModel(testAttention())
	m.Relevance["20% off"] = 0.95
	m.Relevance["learn more"] = 0.2
	cm := m.Compile()
	o := NewModelGuided(cm, []string{"20% off", "learn more"})
	base := snippet.MustNew("base", "acme store learn more", "running shoes", "plain line")
	improved, edits, lift := o.HillClimb(base, 3)
	if len(edits) == 0 {
		t.Fatal("model-guided hill climb made no edits")
	}
	if lift <= 0 {
		t.Errorf("total lift %v", lift)
	}
	var sc textproc.Scratch
	_, before := cm.ScoreSnippet(base.Lines, 3, &sc)
	_, after := cm.ScoreSnippet(improved.Lines, 3, &sc)
	if after <= before {
		t.Errorf("hill-climbed creative does not beat the base: %v vs %v", after, before)
	}
}
