package obs

import (
	"sync"
	"time"
)

// MaxStages bounds the per-trace stage list so traces stay fixed-size
// values: a request pipeline here is decode → score/ingest → encode,
// never deeper than four named stages.
const MaxStages = 4

// Stage is one timed pipeline stage inside a trace.
type Stage struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// Trace is one slow request's post-mortem: identity, shape (model,
// item count), total latency and the per-stage split. Traces are
// built only after a request has already proven slow, so the strings
// and slice here cost nothing on the steady-state path.
type Trace struct {
	ID      string  `json:"id"`
	Proto   string  `json:"proto"` // "http" or "mbsp"
	Kind    string  `json:"kind"`  // endpoint path or frame type
	Model   string  `json:"model,omitempty"`
	Items   int     `json:"items,omitempty"`
	UnixMS  int64   `json:"unix_ms"`
	TotalMS float64 `json:"total_ms"`
	Stages  []Stage `json:"stages,omitempty"`
}

// TraceRing keeps the most recent slow-request traces in a fixed-size
// overwrite ring: one mutex, written only when a request crossed the
// slowness threshold (a cold event by definition), read by
// GET /debug/traces. Old traces are overwritten, never freed one by
// one — bounded memory with no eviction policy to tune.
type TraceRing struct {
	mu        sync.Mutex
	buf       []Trace
	at        int // next write position
	n         int // filled entries, <= len(buf)
	threshold time.Duration
	added     uint64
}

// NewTraceRing returns a ring holding up to size traces of requests
// at least threshold slow (size < 1 becomes 64; threshold <= 0
// records every offered trace, which is what tests want).
func NewTraceRing(size int, threshold time.Duration) *TraceRing {
	if size < 1 {
		size = 64
	}
	return &TraceRing{buf: make([]Trace, size), threshold: threshold}
}

// Threshold returns the slowness cut-off.
func (r *TraceRing) Threshold() time.Duration { return r.threshold }

// Slow reports whether a request of duration d qualifies for the
// ring. Callers check this before building a Trace, so the fast path
// never materialises stage slices or ID strings.
//
//mb:noalloc
func (r *TraceRing) Slow(d time.Duration) bool {
	return d >= r.threshold
}

// Add records one trace, overwriting the oldest when full.
func (r *TraceRing) Add(t Trace) {
	r.mu.Lock()
	r.buf[r.at] = t
	r.at = (r.at + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.added++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.at-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Added returns how many traces were ever recorded (including ones
// since overwritten).
func (r *TraceRing) Added() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.added
}
