// Package obs is the serving stack's observability substrate: a
// dependency-free layer of zero-allocation measurement primitives in
// the repo's design language — atomics, fixed-size arrays,
// //mb:noalloc hot paths — feeding the hand-rolled /metrics and
// /healthz surfaces.
//
// Four pieces:
//
//   - Histogram: a log2-bucketed atomic histogram. Record is one
//     bits.Len64 and three atomic adds — no locks, no allocation — so
//     it can sit inside the compiled score kernel's dispatch loop and
//     the WAL's append path. Snapshot() returns a mergeable value
//     type; WriteProm renders snapshots as Prometheus histogram
//     exposition (_bucket/_sum/_count) with a unit scale, so the same
//     primitive serves nanosecond latencies (scale 1e-9 → seconds)
//     and micro-CTR distributions (scale 1e-6 → probability).
//   - NormL1: the drift metric — the L1 distance between two
//     snapshots' normalised bucket distributions, in [0, 2]. The
//     engine pins a model version's predicted-CTR distribution at
//     publish time and compares the live distribution against it, so
//     a bad online refit is visible on /healthz before CTR regresses.
//   - TraceRing: a fixed-size ring of recent slow-request traces
//     (per-stage timings, model@version, item counts) behind one
//     mutex, written only on the slow path and served at
//     GET /debug/traces.
//   - Request identity and process identity: NewRequestID mints
//     X-Request-ID values; Build and Uptime expose what binary is
//     serving and for how long.
//
// See DESIGN.md ("Observability") for the layering picture.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// procStart anchors Uptime to package initialisation, which for the
// serving binary is process start.
var procStart = time.Now()

// Uptime returns how long this process has been up.
func Uptime() time.Duration { return time.Since(procStart) }

// BuildInfo identifies the running binary: the Go toolchain that built
// it and the VCS state it was built from (empty when the binary was
// built outside a checkout, e.g. go test).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read once from the
// runtime's embedded build information.
func Build() BuildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev := s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				buildInfo.Revision = rev
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// ridPrefix distinguishes IDs minted by different processes; ridSeq
// orders IDs within one. Falling back to a fixed prefix when the
// system entropy source fails start-up keeps IDs useful (unique per
// process run up to restarts) rather than failing request serving.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID mints a process-unique request ID ("mb-3f9a1c2e-2a"):
// a random per-process prefix plus an atomic sequence number. Used
// when a client did not supply its own X-Request-ID; the allocation is
// acceptable because ID generation only happens on the HTTP path,
// which already allocates for JSON decoding.
func NewRequestID() string {
	var seq [8]byte
	n := ridSeq.Add(1)
	for i := 7; i >= 0; i-- {
		seq[i] = "0123456789abcdef"[n&0xf]
		n >>= 4
	}
	i := 0
	for i < 7 && seq[i] == '0' {
		i++
	}
	return "mb-" + ridPrefix + "-" + string(seq[i:])
}
