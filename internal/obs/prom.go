package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Series pairs one label set with one snapshot inside a metric
// family: Labels is the pre-rendered inner label list (e.g.
// `endpoint="/v1/score"` or `model="micro",version="3"`), empty for
// an unlabelled series.
type Series struct {
	Labels string
	Snap   Snapshot
}

// WriteProm renders one histogram metric family in Prometheus text
// exposition format 0.0.4: a single HELP/TYPE header followed by
// cumulative _bucket series, _sum and _count for every label set.
// scale converts Record units into exposition units at render time —
// 1e-9 turns nanosecond samples into seconds, CTRScale turns
// micro-CTR into probability — so the hot path stays in integer
// arithmetic and only the scrape pays for floats. Runs on the cold
// /metrics path; allocation is fine here.
func WriteProm(w io.Writer, name, help string, scale float64, series ...Series) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, se := range series {
		var cum uint64
		for i, n := range se.Snap.Buckets {
			cum += n
			le := "+Inf"
			if i < NumBuckets-1 {
				le = formatFloat(UpperBound(i) * scale)
			}
			if se.Labels == "" {
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, se.Labels, le, cum)
			}
		}
		if se.Labels == "" {
			fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				name, formatFloat(float64(se.Snap.Sum)*scale), name, se.Snap.Count)
		} else {
			fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n",
				name, se.Labels, formatFloat(float64(se.Snap.Sum)*scale), name, se.Labels, se.Snap.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
