package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds exact zeros, bucket i (1..38) holds values in
// [2^(i-1), 2^i - 1], and the last bucket is the +Inf overflow. For
// nanosecond latencies bucket 38 tops out near 4.6 minutes; for
// micro-CTR values (ctr * 1e6) the populated range ends around bucket
// 20 — both comfortably inside the array.
const NumBuckets = 40

// Histogram is a log2-bucketed concurrent histogram of uint64 samples:
// a fixed array of atomic bucket counters plus an atomic sum and
// count. Record is wait-free and allocation-free, so histograms embed
// directly in hot structs (engine observer, WAL, connection loops)
// with no indirection and no setup. The zero value is ready to use.
//
// Log2 buckets trade resolution for speed: each bucket spans a factor
// of two, which is exactly the granularity latency SLOs and drift
// detection care about, and the bucket index is one bits.Len64.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

// Record adds one sample.
//
//mb:noalloc
func (h *Histogram) Record(v uint64) {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// RecordSince records the nanoseconds elapsed since t0.
//
//mb:noalloc
func (h *Histogram) RecordSince(t0 time.Time) {
	d := time.Since(t0)
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Concurrent Records
// may land between bucket loads — the usual monotonic-counter
// tolerance every scrape in this repo accepts — but each captured
// counter is individually consistent and never decreases across
// snapshots.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Snapshot is a point-in-time copy of a Histogram: a plain value type
// that merges, diffs and renders without touching the live atomics.
type Snapshot struct {
	Buckets [NumBuckets]uint64
	Sum     uint64
	Count   uint64
}

// Merge accumulates o into s, the aggregation step for per-shard or
// per-connection histograms.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// bucketBounds returns bucket i's value range [lo, hi]. The last
// bucket reports hi = lo*2 as a rendering cap for quantile
// interpolation; its exposition bound is +Inf.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i >= NumBuckets-1 {
		return lo, lo * 2
	}
	return lo, uint64(1)<<i - 1
}

// UpperBound returns bucket i's inclusive upper bound in raw units;
// the last bucket returns +Inf.
func UpperBound(i int) float64 {
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<i - 1)
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the recorded
// samples in raw units, interpolating linearly inside the bucket the
// rank lands in. Log2 buckets bound the relative error at 2x — the
// honest precision for a 40-word summary, and plenty to tell p50 from
// p99. Returns 0 when the snapshot is empty.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		lo, hi := bucketBounds(i)
		frac := float64(rank-(cum-n)) / float64(n)
		return float64(lo) + frac*float64(hi-lo)
	}
	return 0
}

// Mean returns the average recorded value in raw units (exact, from
// the atomic sum — not a bucket estimate). Returns 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// NormL1 is the drift distance between two snapshots: the L1 distance
// between their normalised bucket distributions, in [0, 2]. 0 means
// identical shape (whatever the sample counts), 2 means disjoint
// support. It is symmetric, needs no smoothing, and is insensitive to
// traffic volume — exactly the properties a publish-time baseline
// comparison needs. Returns 0 when either snapshot is empty: no
// evidence is not evidence of drift.
func NormL1(a, b Snapshot) float64 {
	if a.Count == 0 || b.Count == 0 {
		return 0
	}
	an, bn := float64(a.Count), float64(b.Count)
	var d float64
	for i := range a.Buckets {
		d += math.Abs(float64(a.Buckets[i])/an - float64(b.Buckets[i])/bn)
	}
	return d
}

// CTRScale converts Record units of CTR histograms back to
// probability at exposition time.
const CTRScale = 1e-6

// CTRUnits maps a predicted CTR in [0, 1] to the histogram's integer
// domain (micro-CTR). Log2 buckets over micro-units resolve the
// decades that matter — 1e-6 through 1 — into ~20 buckets.
//
//mb:noalloc
func CTRUnits(ctr float64) uint64 {
	if ctr <= 0 {
		return 0
	}
	if ctr >= 1 {
		return 1e6
	}
	return uint64(ctr*1e6 + 0.5)
}
