package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Record(0) // bucket 0
	h.Record(1) // bucket 1
	h.Record(2) // bucket 2
	h.Record(3) // bucket 2
	h.Record(4) // bucket 3
	h.Record(math.MaxUint64)

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	var wantSum uint64 = 0 + 1 + 2 + 3 + 4
	wantSum += math.MaxUint64 // wraps: matches the atomic adds
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, NumBuckets - 1: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(100)
	b.Record(1000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 1110 {
		t.Fatalf("merged count/sum = %d/%d, want 3/1110", sa.Count, sa.Sum)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 1000 samples uniform on [1, 1000]: log2 buckets bound relative
	// error at 2x, so p50 must land within a factor of two of 500.
	for i := 1; i <= 1000; i++ {
		h.Record(uint64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, exact float64 }{{0.5, 500}, {0.95, 950}, {0.99, 990}} {
		got := s.Quantile(tc.q)
		if got < tc.exact/2 || got > tc.exact*2 {
			t.Errorf("Quantile(%v) = %v, want within 2x of %v", tc.q, got, tc.exact)
		}
	}
	if p0 := s.Quantile(0); p0 < 1 || p0 > 2 {
		t.Errorf("Quantile(0) = %v, want ~1", p0)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(70) // bucket [64, 127]
	}
	got := h.Snapshot().Quantile(0.5)
	if got < 64 || got > 127 {
		t.Fatalf("Quantile(0.5) = %v, want inside [64, 127]", got)
	}
}

func TestNormL1(t *testing.T) {
	var a, b Histogram
	if d := NormL1(a.Snapshot(), b.Snapshot()); d != 0 {
		t.Fatalf("empty NormL1 = %v, want 0", d)
	}
	for i := 0; i < 100; i++ {
		a.Record(100)
		b.Record(100)
	}
	if d := NormL1(a.Snapshot(), b.Snapshot()); d != 0 {
		t.Fatalf("identical NormL1 = %v, want 0", d)
	}
	// Same shape at 10x the volume: still zero — drift is about
	// distribution, not traffic.
	for i := 0; i < 900; i++ {
		b.Record(100)
	}
	if d := NormL1(a.Snapshot(), b.Snapshot()); d != 0 {
		t.Fatalf("scaled NormL1 = %v, want 0", d)
	}
	// Disjoint support: maximal distance 2.
	var c, e Histogram
	c.Record(1)
	e.Record(1 << 20)
	if d := NormL1(c.Snapshot(), e.Snapshot()); math.Abs(d-2) > 1e-12 {
		t.Fatalf("disjoint NormL1 = %v, want 2", d)
	}
}

func TestCTRUnits(t *testing.T) {
	for _, tc := range []struct {
		ctr  float64
		want uint64
	}{{-1, 0}, {0, 0}, {1e-6, 1}, {0.5, 500000}, {1, 1e6}, {2, 1e6}} {
		if got := CTRUnits(tc.ctr); got != tc.want {
			t.Errorf("CTRUnits(%v) = %d, want %d", tc.ctr, got, tc.want)
		}
	}
}

func TestRecordSince(t *testing.T) {
	var h Histogram
	h.RecordSince(time.Now().Add(-time.Millisecond))
	h.RecordSince(time.Now().Add(time.Hour)) // clock skew clamps to 0
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("negative elapsed must clamp into bucket 0, got %v", s.Buckets[0])
	}
}

func TestWritePromExposition(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(5 * 1000) // 5µs in ns
	var sb strings.Builder
	WriteProm(&sb, "test_duration_seconds", "Test latencies.", 1e-9,
		Series{Snap: h.Snapshot()},
		Series{Labels: `endpoint="/v1/score"`, Snap: h.Snapshot()})
	out := sb.String()

	for _, want := range []string{
		"# HELP test_duration_seconds Test latencies.",
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{le="0"} 1`,
		`test_duration_seconds_bucket{le="+Inf"} 2`,
		"test_duration_seconds_sum 5e-06",
		"test_duration_seconds_count 2",
		`test_duration_seconds_bucket{endpoint="/v1/score",le="+Inf"} 2`,
		`test_duration_seconds_count{endpoint="/v1/score"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative buckets never decrease and end at Count.
	var prev uint64
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, "test_duration_seconds_bucket{le=") {
			continue
		}
		v, err := strconv.ParseUint(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < prev {
			t.Fatalf("non-cumulative bucket line %q (prev %d)", ln, prev)
		}
		prev = v
	}
	if prev != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", prev)
	}
}
