package obs

import (
	"testing"
	"time"
)

// The histogram is advertised as embeddable in the score kernel's
// dispatch loop and the WAL append path; these tests hold Record and
// its helpers to that claim so a future change cannot silently add a
// per-sample allocation.

func TestHistogramRecordNoalloc(t *testing.T) {
	var h Histogram
	var v uint64
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 1234567
	}); n != 0 {
		t.Fatalf("Histogram.Record allocates %v/op, want 0", n)
	}
}

func TestRecordSinceNoalloc(t *testing.T) {
	var h Histogram
	t0 := time.Now()
	if n := testing.AllocsPerRun(1000, func() {
		h.RecordSince(t0)
	}); n != 0 {
		t.Fatalf("Histogram.RecordSince allocates %v/op, want 0", n)
	}
}

func TestCTRUnitsNoalloc(t *testing.T) {
	ctr := 0.0
	var sink uint64
	if n := testing.AllocsPerRun(1000, func() {
		sink += CTRUnits(ctr)
		ctr += 0.001
	}); n != 0 {
		t.Fatalf("CTRUnits allocates %v/op, want 0", n)
	}
	_ = sink
}

func TestTraceRingSlowNoalloc(t *testing.T) {
	r := NewTraceRing(4, 10*time.Millisecond)
	d := time.Duration(0)
	if n := testing.AllocsPerRun(1000, func() {
		_ = r.Slow(d)
		d += time.Microsecond
	}); n != 0 {
		t.Fatalf("TraceRing.Slow allocates %v/op, want 0", n)
	}
}
