package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRingOverwrite(t *testing.T) {
	r := NewTraceRing(3, 0)
	for i := 1; i <= 5; i++ {
		r.Add(Trace{ID: string(rune('0' + i))})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Newest first: 5, 4, 3 survive; 1 and 2 were overwritten.
	for i, want := range []string{"5", "4", "3"} {
		if got[i].ID != want {
			t.Errorf("trace[%d].ID = %q, want %q", i, got[i].ID, want)
		}
	}
	if r.Added() != 5 {
		t.Fatalf("Added = %d, want 5", r.Added())
	}
}

func TestTraceRingEmpty(t *testing.T) {
	r := NewTraceRing(8, time.Millisecond)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d entries", len(got))
	}
}

func TestTraceRingSlow(t *testing.T) {
	r := NewTraceRing(8, 10*time.Millisecond)
	if r.Slow(time.Millisecond) {
		t.Fatal("1ms qualified against a 10ms threshold")
	}
	if !r.Slow(10 * time.Millisecond) {
		t.Fatal("threshold itself must qualify")
	}
	all := NewTraceRing(8, 0)
	if !all.Slow(0) {
		t.Fatal("zero threshold must record everything")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("consecutive IDs collide: %q", a)
	}
	if !strings.HasPrefix(a, "mb-") || strings.Count(a, "-") != 2 {
		t.Fatalf("unexpected ID shape %q", a)
	}
}

func TestBuildAndUptime(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" {
		t.Fatal("Build().GoVersion is empty under go test")
	}
	if Uptime() <= 0 {
		t.Fatal("Uptime() is not positive")
	}
}
