// Benchmarks regenerating every evaluation artifact of the paper, plus
// ablation benches for the design choices called out in DESIGN.md.
//
// One benchmark exists per table/figure:
//
//	BenchmarkTable2_M1..M6        — Table 2 rows (train+evaluate one fold)
//	BenchmarkFigure3_PositionWeights — Figure 3 (full M6 fit + extraction)
//	BenchmarkTable4_Top / _RHS    — Table 4 columns
//	BenchmarkClickModel_*         — the S1 click-model substrate
//
// The benchmark corpora are small so `go test -bench=.` stays quick; the
// full-scale numbers come from cmd/experiments (see EXPERIMENTS.md).
package microbrowsing_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	micro "repro"
	"repro/internal/classifier"
	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/rewrite"
	"repro/internal/serp"
	"repro/internal/server"
	"repro/internal/server/binproto"
	"repro/internal/snapshot"
	"repro/internal/snippet"
	"repro/internal/stream"
	"repro/internal/textproc"
	"repro/internal/wal"
)

// benchData lazily builds one shared small experiment corpus.
var benchData = struct {
	once  sync.Once
	data  *experiments.Data
	rhs   *experiments.Data
	setup experiments.Setup
}{}

func getBenchData(b *testing.B) (*experiments.Data, experiments.Setup) {
	b.Helper()
	benchData.once.Do(func() {
		benchData.setup = experiments.Setup{
			Seed: 404, Groups: 200, StatsGroups: 600, Impressions: 500, Folds: 3,
		}
		benchData.data = experiments.BuildData(benchData.setup)
		rhsSetup := benchData.setup
		rhsSetup.Placement = serp.RHS
		benchData.rhs = experiments.BuildData(rhsSetup)
	})
	return benchData.data, benchData.setup
}

// benchTable2Model trains and scores one Table 2 row on a single fold.
func benchTable2Model(b *testing.B, spec classifier.ModelSpec) {
	data, setup := getBenchData(b)
	pipe := classifier.NewPipeline(spec, data.DB)
	pipe.Seed = setup.Seed
	ds := pipe.Dataset(data.Pairs)
	folds, err := ml.KFold(ds.Len(), setup.Folds, setup.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := classifier.Train(ds, folds[0].Train, classifier.Options{Epochs: 40, Rounds: 3})
		if err != nil {
			b.Fatal(err)
		}
		preds := model.PredictIdx(ds, folds[0].Test)
		labels := make([]bool, len(folds[0].Test))
		for k, j := range folds[0].Test {
			labels[k] = ds.Labels[j]
		}
		met := ml.EvaluateBinary(preds, labels)
		if met.Accuracy < 0.3 {
			b.Fatalf("%s collapsed: %v", spec.Name, met.Accuracy)
		}
	}
}

func BenchmarkTable2_M1(b *testing.B) { benchTable2Model(b, classifier.M1) }
func BenchmarkTable2_M2(b *testing.B) { benchTable2Model(b, classifier.M2) }
func BenchmarkTable2_M3(b *testing.B) { benchTable2Model(b, classifier.M3) }
func BenchmarkTable2_M4(b *testing.B) { benchTable2Model(b, classifier.M4) }
func BenchmarkTable2_M5(b *testing.B) { benchTable2Model(b, classifier.M5) }
func BenchmarkTable2_M6(b *testing.B) { benchTable2Model(b, classifier.M6) }

// BenchmarkFigure3_PositionWeights regenerates Figure 3: full M6 training
// plus extraction of the learned per-line position weights.
func BenchmarkFigure3_PositionWeights(b *testing.B) {
	data, setup := getBenchData(b)
	pipe := classifier.NewPipeline(classifier.M6, data.DB)
	pipe.Seed = setup.Seed
	ds := pipe.Dataset(data.Pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := classifier.Train(ds, nil, classifier.Options{Epochs: 40, Rounds: 3})
		if err != nil {
			b.Fatal(err)
		}
		if table := model.PositionWeights(); len(table) == 0 {
			b.Fatal("no position weights learned")
		}
	}
}

// benchTable4Column runs one placement column of Table 4 (M6 only, one
// fold) against the placement-specific corpus.
func benchTable4Column(b *testing.B, data *experiments.Data, seed int64) {
	pipe := classifier.NewPipeline(classifier.M6, data.DB)
	pipe.Seed = seed
	ds := pipe.Dataset(data.Pairs)
	folds, err := ml.KFold(ds.Len(), 3, seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := classifier.Train(ds, folds[0].Train, classifier.Options{Epochs: 40, Rounds: 3})
		if err != nil {
			b.Fatal(err)
		}
		model.PredictIdx(ds, folds[0].Test)
	}
}

func BenchmarkTable4_Top(b *testing.B) {
	data, setup := getBenchData(b)
	benchTable4Column(b, data, setup.Seed)
}

func BenchmarkTable4_RHS(b *testing.B) {
	_, setup := getBenchData(b)
	benchTable4Column(b, benchData.rhs, setup.Seed)
}

// --- S1: click-model substrate benches ---

var benchSessions = struct {
	once     sync.Once
	sessions []clickmodel.Session
	compiled *clickmodel.CompiledLog
}{}

func getBenchSessions(b *testing.B) ([]clickmodel.Session, *clickmodel.CompiledLog) {
	b.Helper()
	benchSessions.once.Do(func() {
		corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 405, Groups: 150}, micro.DefaultLexicon())
		sim := micro.NewSimulator(micro.SimConfig{Seed: 406})
		benchSessions.sessions = sim.Sessions(corpus, 4000, 4)
		var err error
		benchSessions.compiled, err = clickmodel.Compile(benchSessions.sessions)
		if err != nil {
			panic(err)
		}
	})
	return benchSessions.sessions, benchSessions.compiled
}

// benchClickModel measures the steady-state fit: the log is compiled
// (interned) once and one model instance is refitted per op — the shape
// of a serving system re-estimating on live traffic, where refits reuse
// the exported parameter storage and the pooled accumulator slab. Each
// op is one full parameter estimation including materializing the
// exported map form. Models predating the compiled-log layer fall back
// to Fit, which re-interns per call.
func benchClickModel(b *testing.B, newModel func() clickmodel.Model) {
	sessions, compiled := getBenchSessions(b)
	m := newModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if lf, ok := m.(clickmodel.LogFitter); ok {
			err = lf.FitLog(compiled)
		} else {
			err = m.Fit(sessions)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClickModel_Compile prices the one-time interning pass the
// other ClickModel benches hoist.
func BenchmarkClickModel_Compile(b *testing.B) {
	sessions, _ := getBenchSessions(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clickmodel.Compile(sessions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClickModel_PBM(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { m := clickmodel.NewPBM(); m.Iterations = 5; return m })
}

func BenchmarkClickModel_Cascade(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { return clickmodel.NewCascade() })
}

func BenchmarkClickModel_DCM(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { return clickmodel.NewDCM() })
}

func BenchmarkClickModel_UBM(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { m := clickmodel.NewUBM(); m.Iterations = 5; return m })
}

func BenchmarkClickModel_BBM(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model {
		m := clickmodel.NewBBM()
		m.SetIterations(5)
		return m
	})
}

func BenchmarkClickModel_CCM(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { m := clickmodel.NewCCM(); m.Iterations = 5; return m })
}

func BenchmarkClickModel_DBN(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { m := clickmodel.NewDBN(); m.Iterations = 5; return m })
}

func BenchmarkClickModel_SDBN(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { return clickmodel.NewSDBN() })
}

func BenchmarkClickModel_GCM(b *testing.B) {
	benchClickModel(b, func() clickmodel.Model { m := clickmodel.NewGCM(); m.Iterations = 5; return m })
}

// BenchmarkClickModel_Evaluate measures the single-pass held-out
// scoring (log-likelihood + perplexity with a reused buffer).
func BenchmarkClickModel_Evaluate(b *testing.B) {
	sessions, compiled := getBenchSessions(b)
	m := clickmodel.NewPBM()
	m.Iterations = 5
	if err := m.FitLog(compiled); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := clickmodel.Evaluate(m, sessions)
		if ev.Perplexity < 1 {
			b.Fatal("perplexity below 1")
		}
	}
}

// --- unified scoring engine ---

// benchEngineCorpus lazily builds the engine bench corpus: one micro
// scoring request per creative of a mid-sized synthetic corpus, plus
// the planted ground-truth model to score them with.
var benchEngineCorpus = struct {
	once  sync.Once
	reqs  []micro.ScoreRequest
	model *micro.Model
}{}

func getEngineBench(b *testing.B) ([]micro.ScoreRequest, *micro.Model) {
	b.Helper()
	benchEngineCorpus.once.Do(func() {
		lex := micro.DefaultLexicon()
		corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 407, Groups: 400}, lex)
		benchEngineCorpus.model = micro.NewSimulator(micro.SimConfig{Seed: 408}).TrueModel(lex)
		for gi := range corpus.Groups {
			for ci := range corpus.Groups[gi].Creatives {
				c := &corpus.Groups[gi].Creatives[ci]
				benchEngineCorpus.reqs = append(benchEngineCorpus.reqs,
					micro.ScoreRequest{ID: c.ID, Lines: c.Lines, MaxN: 3})
			}
		}
	})
	return benchEngineCorpus.reqs, benchEngineCorpus.model
}

// BenchmarkEngineScoreBatch measures batch-scoring throughput of the
// unified engine over its worker pool at 1, 4 and GOMAXPROCS workers.
// On multi-core hardware the 4-worker batch must beat the single
// worker; on a single hardware thread the pool degenerates gracefully.
//
// The dispatch sub-benches swap the micro scorer for a no-op, so the
// per-request engine overhead — model resolution (the RWMutex-vs-
// atomic-table read path), worker pool, response bookkeeping — is
// measured bare instead of buried under term extraction.
func BenchmarkEngineScoreBatch(b *testing.B) {
	reqs, model := getEngineBench(b)
	ctx := context.Background()
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := micro.NewEngine(micro.WithWorkers(workers))
			eng.UseMicro(model)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps := eng.ScoreBatch(ctx, reqs)
				if resps[0].Err != nil {
					b.Fatal(resps[0].Err)
				}
			}
			b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
	nopReqs := make([]micro.ScoreRequest, 4096)
	for i := range nopReqs {
		nopReqs[i] = micro.ScoreRequest{Model: "nop"}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("dispatch/workers=%d", workers), func(b *testing.B) {
			eng := micro.NewEngine(micro.WithWorkers(workers))
			eng.Register("nop", nopScorer{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps := eng.ScoreBatch(ctx, nopReqs)
				if resps[0].Err != nil {
					b.Fatal(resps[0].Err)
				}
			}
			b.ReportMetric(float64(len(nopReqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// --- micro scoring path: compiled vs map-based ---

// BenchmarkMicroScore prices one micro scoring request through the
// three serving layers: the compiled model kernel (interned vocab,
// byte-window n-gram lookup, dense attention table — the steady-state
// zero-allocation path), the fused map-based fallback, and the full
// engine dispatch (resolution + pooled scratch around the compiled
// kernel).
func BenchmarkMicroScore(b *testing.B) {
	reqs, model := getEngineBench(b)
	ctx := context.Background()

	b.Run("compiled", func(b *testing.B) {
		cm := model.Compile()
		var sc textproc.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reqs[i%len(reqs)]
			ctr, _ := cm.ScoreSnippet(r.Lines, r.MaxN, &sc)
			if ctr < 0 || ctr > 1 {
				b.Fatalf("ctr out of range: %v", ctr)
			}
		}
	})

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reqs[i%len(reqs)]
			ctr, _ := model.ScoreSnippet(r.Lines, r.MaxN)
			if ctr < 0 || ctr > 1 {
				b.Fatalf("ctr out of range: %v", ctr)
			}
		}
	})

	b.Run("engine", func(b *testing.B) {
		eng := micro.NewEngine()
		eng.UseMicro(model)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ScoreCTR(ctx, reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractTermsPath compares the two term-resolution paths on
// the bench corpus: materialising every positioned n-gram string
// (textproc.ExtractTerms, what the serving loop used to do per
// request) against the zero-copy tokenise + byte-window vocab lookup
// the compiled scorer rides.
func BenchmarkExtractTermsPath(b *testing.B) {
	reqs, model := getEngineBench(b)

	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reqs[i%len(reqs)]
			if terms := textproc.ExtractTerms(r.Lines, r.MaxN); len(terms) == 0 {
				b.Fatal("no terms extracted")
			}
		}
	})

	b.Run("lookup", func(b *testing.B) {
		vocab := textproc.NewTermVocab(len(model.Relevance))
		for t := range model.Relevance {
			vocab.Add(t)
		}
		var sc textproc.Scratch
		hits := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reqs[i%len(reqs)]
			for _, line := range r.Lines {
				spans := sc.Tokenize(line)
				for n := 1; n <= r.MaxN; n++ {
					for j := 0; j+n <= len(spans); j++ {
						if _, ok := vocab.LookupBytes(sc.Norm[spans[j].Start:spans[j+n-1].End]); ok {
							hits++
						}
					}
				}
			}
		}
		if b.N > 100 && hits == 0 {
			b.Fatal("vocab lookups never hit; bench is not measuring the hit path")
		}
	})
}

// --- serving transport + zero-parse artifact loading ---

// BenchmarkServeProtocol prices one 256-request score batch through
// the two wire protocols microserve speaks on its single port: the
// JSON HTTP surface (marshal, POST, unmarshal — the cost every REST
// client pays) and the length-prefixed MBSP binary framing
// (internal/server/binproto), whose server side runs allocation-free
// at steady state. Both sub-benches talk to the same engine through
// the same sniffing mux over real TCP, so the delta is pure protocol
// tax.
func BenchmarkServeProtocol(b *testing.B) {
	reqs, model := getEngineBench(b)
	const batch = 256
	if len(reqs) < batch {
		b.Fatalf("bench corpus has %d requests, need %d", len(reqs), batch)
	}
	breqs := make([]micro.ScoreRequest, batch)
	copy(breqs, reqs[:batch])

	eng := micro.NewEngine(micro.WithWorkers(1))
	eng.UseMicro(model)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hsrv := &http.Server{Handler: server.New(eng, nil)}
	mux := binproto.NewMux(ln, binproto.NewServer(eng, nil))
	go hsrv.Serve(mux)
	defer hsrv.Close()
	addr := ln.Addr().String()

	b.Run("json", func(b *testing.B) {
		client := &http.Client{}
		url := "http://" + addr + "/v1/score/batch"
		type batchBody struct {
			Requests []micro.ScoreRequest `json:"requests"`
		}
		type batchReply struct {
			Responses []micro.ScoreResponse `json:"responses"`
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, err := json.Marshal(batchBody{Requests: breqs})
			if err != nil {
				b.Fatal(err)
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var out batchReply
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if len(out.Responses) != batch {
				b.Fatalf("got %d responses, want %d", len(out.Responses), batch)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("binary", func(b *testing.B) {
		c, err := binproto.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, err := c.ScoreBatch(breqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(resps) != batch {
				b.Fatalf("got %d responses, want %d", len(resps), batch)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}

// syntheticMicroModel pads the bench corpus ground-truth model with
// deterministic filler vocabulary up to the requested term count — the
// knob behind the load-path benches' artifact sizes.
func syntheticMicroModel(b *testing.B, terms int) *micro.Model {
	b.Helper()
	_, base := getEngineBench(b)
	m := &micro.Model{
		Relevance:        make(map[string]float64, terms),
		DefaultRelevance: base.DefaultRelevance,
		Attention:        base.Attention,
	}
	for t, r := range base.Relevance {
		m.Relevance[t] = r
	}
	for i := len(m.Relevance); i < terms; i++ {
		m.Relevance[fmt.Sprintf("synthetic filler term %09d", i)] = 0.1 + float64(i%80)/100
	}
	return m
}

// BenchmarkSnapshotLoad prices a model hot-swap per artifact format at
// three artifact sizes: the v1 varint stream (decode every parameter,
// rebuild every table — O(size) before the swap lands) against the v2
// sectioned layout (validate the directory, map the file, adopt the
// tables in place — O(1) in artifact size). The engine keeps one
// version per name, so each op also prices the unmap/free of the
// previous artifact, exactly what a production reload pays.
func BenchmarkSnapshotLoad(b *testing.B) {
	dir := b.TempDir()
	type artifact struct{ label, v1, v2 string }
	var arts []artifact
	for _, sz := range []struct {
		label string
		terms int
	}{
		{"1MB", 25_000},
		{"10MB", 250_000},
		{"100MB", 2_750_000},
	} {
		m := syntheticMicroModel(b, sz.terms)
		a := artifact{
			label: sz.label,
			v1:    filepath.Join(dir, sz.label+"-v1.bin"),
			v2:    filepath.Join(dir, sz.label+"-v2.bin"),
		}
		if err := snapshot.WriteFileAtomic(a.v1, m.Save); err != nil {
			b.Fatal(err)
		}
		if err := snapshot.WriteFileAtomic(a.v2, m.SaveV2); err != nil {
			b.Fatal(err)
		}
		arts = append(arts, a)
	}
	// The top size must genuinely be a >=100MB artifact in both formats
	// or the O(1)-load claim is being tested against a toy.
	for _, path := range []string{arts[len(arts)-1].v1, arts[len(arts)-1].v2} {
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		if fi.Size() < 100<<20 {
			b.Fatalf("%s is %d bytes, want >= 100MB", path, fi.Size())
		}
	}
	run := func(b *testing.B, path string) {
		eng := micro.NewEngine(micro.WithKeepVersions(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.LoadSnapshotFile("m", path); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, a := range arts {
		b.Run("v1/size="+a.label, func(b *testing.B) { run(b, a.v1) })
		b.Run("mmap/size="+a.label, func(b *testing.B) { run(b, a.v2) })
	}
}

// nopScorer answers instantly: the engine's own per-request overhead
// is all the dispatch sub-benches measure.
type nopScorer struct{}

func (nopScorer) ScoreCTR(ctx context.Context, req micro.ScoreRequest) (micro.ScoreResponse, error) {
	return micro.ScoreResponse{CTR: 0.5}, nil
}

// --- ablation benches for DESIGN.md section 5 ---

// BenchmarkAblation_GreedyMatching vs _NaiveMatching compare the
// DB-scored greedy matcher against position-only matching.
func BenchmarkAblation_GreedyMatching(b *testing.B) {
	data, _ := getBenchData(b)
	m := rewrite.NewMatcher(data.DB)
	r, s := ablationPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchPair(r, s)
	}
}

func BenchmarkAblation_NaiveMatching(b *testing.B) {
	m := &rewrite.Matcher{Scorer: rewrite.PositionScorer{}}
	r, s := ablationPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchPair(r, s)
	}
}

func ablationPair() (snippet.Creative, snippet.Creative) {
	return snippet.MustNew("r",
			"XYZ Airlines official site",
			"Find cheap flights to New York today",
			"No reservation costs. Great rates"),
		snippet.MustNew("s",
			"XYZ Airlines official site",
			"Flying to New York? Get discounts.",
			"No reservation costs. Great rates!")
}

// BenchmarkAblation_StatsInit vs _ZeroInit measure the cost/benefit of
// statistics-database initialisation (M1 with and without).
func benchInitAblation(b *testing.B, useInit bool) {
	data, setup := getBenchData(b)
	spec := classifier.M1
	spec.UseStatsInit = useInit
	pipe := classifier.NewPipeline(spec, data.DB)
	pipe.Seed = setup.Seed
	ds := pipe.Dataset(data.Pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classifier.Train(ds, nil, classifier.Options{Epochs: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_StatsInit(b *testing.B) { benchInitAblation(b, true) }
func BenchmarkAblation_ZeroInit(b *testing.B)  { benchInitAblation(b, false) }

// BenchmarkAblation_FTRL vs _BatchLR compare the two L1 optimisers on
// the same M1 dataset.
func BenchmarkAblation_BatchLR(b *testing.B) {
	data, setup := getBenchData(b)
	pipe := classifier.NewPipeline(classifier.M1, data.DB)
	pipe.Seed = setup.Seed
	ds := pipe.Dataset(data.Pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &ml.LogisticRegression{L1: 1e-4, Epochs: 40, LearningRate: 0.5}
		if err := m.Fit(ds.Flat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_FTRL(b *testing.B) {
	data, setup := getBenchData(b)
	pipe := classifier.NewPipeline(classifier.M1, data.DB)
	pipe.Seed = setup.Seed
	ds := pipe.Dataset(data.Pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ml.NewFTRL()
		if err := m.Fit(ds.Flat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_InitSmoothing measures evidence-shrunk
// initialisation lookups against the raw odds (featstats layer).
func BenchmarkAblation_InitSmoothing(b *testing.B) {
	data, _ := getBenchData(b)
	keys := make([]string, 0, 256)
	for k := range data.DB.Stats {
		keys = append(keys, k)
		if len(keys) == 256 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			_ = data.DB.LogOddsSmoothed(k, 8)
		}
	}
}

// --- online learning stream ---

// getStreamSessions reuses the click-model bench log as replayable
// feedback traffic.
func getStreamSessions(b *testing.B) []clickmodel.Session {
	sessions, _ := getBenchSessions(b)
	return sessions
}

// BenchmarkStreamIngest prices the sustained sink throughput — the
// per-event cost the HTTP feedback handler pays, plus the amortised
// drain that empties shard buffers as they fill. Draining happens
// inline on saturation (a background drainer cannot be relied on under
// GOMAXPROCS=1), guarded by a mutex in the parallel case because only
// one drainer may work a shard at a time. Steady state must not
// allocate, and with the drain keeping pace nothing may drop.
func BenchmarkStreamIngest(b *testing.B) {
	sessions := getStreamSessions(b)
	run := func(b *testing.B, parallel bool) {
		sink := stream.NewSink(runtime.GOMAXPROCS(0), 1<<13)
		var drainMu sync.Mutex
		discard := func(*stream.Event) {}
		offer := func(ev stream.Event) {
			for !sink.Offer(ev) {
				drainMu.Lock()
				for s := 0; s < sink.Shards(); s++ {
					sink.DrainShard(s, discard)
				}
				drainMu.Unlock()
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		if parallel {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					offer(stream.Event{Session: &sessions[i%len(sessions)]})
					i++
				}
			})
		} else {
			for i := 0; i < b.N; i++ {
				offer(stream.Event{Session: &sessions[i%len(sessions)]})
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		if q := sink.Queued(); q < uint64(b.N) {
			b.Fatalf("queued %d of %d offers", q, b.N)
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, false) })
	b.Run("parallel", func(b *testing.B) { run(b, true) })
}

// BenchmarkStreamFold prices the per-session accumulation into the
// incremental sufficient statistics (interning plus dense count
// updates); after the first pass over the log every pair is interned
// and the steady state allocates nothing.
func BenchmarkStreamFold(b *testing.B) {
	sessions := getStreamSessions(b)
	st := clickmodel.NewStats()
	for i := range sessions {
		if err := st.Add(sessions[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Add(sessions[i%len(sessions)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkStreamPublish measures publish latency end to end — drain,
// merge, refit, install — per model family: counting (SDBN, from the
// global statistics) and EM (PBM, windowed mini-batch refit). Each op
// ingests a fresh slice of traffic and publishes one new version.
func BenchmarkStreamPublish(b *testing.B) {
	sessions := getStreamSessions(b)
	for _, tc := range []struct {
		name   string
		models []string
	}{
		{"counting", []string{"sdbn"}},
		{"em", []string{"pbm"}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := micro.NewEngine(micro.WithKeepVersions(2))
			l, err := stream.New(eng, stream.Config{
				Models: tc.models, Shards: 4, QueueCap: 1 << 13, Window: len(sessions), Iterations: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm: the whole log folded once, one version installed.
			for i := range sessions {
				if err := l.Ingest(stream.Event{Session: &sessions[i]}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := l.Publish(); err != nil {
				b.Fatal(err)
			}
			const perOp = 500
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < perOp; k++ {
					l.Ingest(stream.Event{Session: &sessions[(i*perOp+k)%len(sessions)]})
				}
				if _, err := l.Publish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- feedback WAL ---

// benchWALRecord is a representative feedback record: one 4-doc
// session, the same shape the online loop's hot path logs.
func benchWALRecord(sessions []clickmodel.Session, i int) wal.Record {
	return wal.Record{Session: &sessions[i%len(sessions)]}
}

// BenchmarkWALAppend prices one durable append under each fsync
// policy. batched is the configured default (the hot path is a
// lock-free ring publish, no syscall — it must not allocate); always
// pays a group-committed fsync per call and is the floor for zero-loss
// ingest; off writes on the flush cadence and never fsyncs.
func BenchmarkWALAppend(b *testing.B) {
	sessions := getStreamSessions(b)
	for _, tc := range []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"batched", wal.SyncBatched},
		{"always", wal.SyncAlways},
		{"off", wal.SyncOff},
	} {
		b.Run("fsync="+tc.name, func(b *testing.B) {
			// MaxBytes keeps the log bounded like a production deploy;
			// an unpruned log otherwise grows without limit across
			// iterations and prices filesystem pressure, not the path.
			w, err := wal.Open(b.TempDir(), wal.Options{Sync: tc.sync, MaxBytes: 256 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			// Warm the append buffer so steady state is measured.
			for i := 0; i < 1000; i++ {
				if _, err := w.Append(benchWALRecord(sessions, i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(benchWALRecord(sessions, i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}

// BenchmarkWALIngest prices the full accept path of one feedback event
// — sink offer plus (optionally) the WAL append — the comparison
// behind the durability tax: wal=batched must stay within 2x of nowal.
func BenchmarkWALIngest(b *testing.B) {
	sessions := getStreamSessions(b)
	run := func(b *testing.B, sync wal.SyncPolicy, durable bool) {
		sink := stream.NewSink(runtime.GOMAXPROCS(0), 1<<13)
		discard := func(*stream.Event) {}
		var w *wal.WAL
		if durable {
			var err error
			// Bounded retention, as in production (see BenchmarkWALAppend).
			if w, err = wal.Open(b.TempDir(), wal.Options{Sync: sync, MaxBytes: 256 << 20}); err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			// Warm the encoder buffers so steady state is measured.
			for i := 0; i < 1000; i++ {
				if _, err := w.Append(benchWALRecord(sessions, i)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := stream.Event{Session: &sessions[i%len(sessions)]}
			for !sink.Offer(ev) {
				for s := 0; s < sink.Shards(); s++ {
					sink.DrainShard(s, discard)
				}
			}
			if durable {
				if _, err := w.Append(wal.Record{Session: ev.Session}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
	}
	b.Run("nowal", func(b *testing.B) { run(b, wal.SyncBatched, false) })
	b.Run("wal=batched", func(b *testing.B) { run(b, wal.SyncBatched, true) })
	b.Run("wal=always", func(b *testing.B) { run(b, wal.SyncAlways, true) })
}

// BenchmarkWALReplay prices boot-time recovery: one op replays a
// sealed multi-segment log end to end, the cost a restart pays before
// serving resumes.
func BenchmarkWALReplay(b *testing.B) {
	sessions := getStreamSessions(b)
	dir := b.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		if _, err := w.Append(benchWALRecord(sessions, i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := wal.Open(dir, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		replayed := 0
		if err := r.Replay(func(uint64, *wal.Record) error { replayed++; return nil }); err != nil {
			b.Fatal(err)
		}
		if replayed != n {
			b.Fatalf("replayed %d of %d", replayed, n)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "sessions/s")
}

// --- candidate-set scoring fast path (/v1/optimize) ---

// BenchmarkOptimizeCandidates prices the /v1/optimize workload — one
// query × N candidate snippets that are edits of a common base, so the
// candidates share almost all of their lines — through three layers:
//
//	naive        — ScoreSnippet in a loop, one full tokenise + vocab
//	               walk per candidate (what a client scoring variants
//	               one at a time pays)
//	candidateset — core.ScoreCandidates, the amortised pass: each
//	               distinct (line, position) pair is tokenised and
//	               scored once, candidates combine cached partials
//	engine       — the same pass behind engine resolution + version
//	               pinning + pooled scratch, i.e. what the server runs
//
// The candidate-set pass must hold a ≥5× advantage over naive at
// N=512 and allocate nothing at steady state; BENCH_optimize.json
// tracks both (scripts/bench.sh -s optimize).
func BenchmarkOptimizeCandidates(b *testing.B) {
	reqs, model := getEngineBench(b)
	cm := model.Compile()
	ctx := context.Background()

	// The candidate pool: lines drawn from a dozen sibling creatives,
	// mixed three at a time — the loadgen -optimize-every workload
	// shape, with the heavy line sharing real edit spaces have.
	var pool []string
	for i := 0; i < len(reqs) && len(pool) < 36; i++ {
		pool = append(pool, reqs[i].Lines...)
	}
	build := func(n int) [][]string {
		cands := make([][]string, 0, n+1)
		cands = append(cands, reqs[0].Lines) // slot 0: the base snippet
		for i := 0; i < n; i++ {
			cands = append(cands, []string{
				pool[(i*7)%len(pool)],
				pool[(i*5+11)%len(pool)],
				pool[(i*3+23)%len(pool)],
			})
		}
		return cands
	}

	for _, n := range []int{16, 128, 512} {
		cands := build(n)

		b.Run(fmt.Sprintf("naive/N=%d", n), func(b *testing.B) {
			var sc textproc.Scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, lines := range cands {
					if ctr, _ := cm.ScoreSnippet(lines, 3, &sc); ctr < 0 || ctr > 1 {
						b.Fatalf("ctr out of range: %v", ctr)
					}
				}
			}
			b.ReportMetric(float64(len(cands))*float64(b.N)/b.Elapsed().Seconds(), "cand/s")
		})

		b.Run(fmt.Sprintf("candidateset/N=%d", n), func(b *testing.B) {
			var cs core.CandidateScratch
			out := cm.ScoreCandidates(cands, 3, &cs, nil) // warm the arenas
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = cm.ScoreCandidates(cands, 3, &cs, out)
				if out[0].CTR < 0 || out[0].CTR > 1 {
					b.Fatalf("ctr out of range: %v", out[0].CTR)
				}
			}
			b.ReportMetric(float64(len(cands))*float64(b.N)/b.Elapsed().Seconds(), "cand/s")
		})

		b.Run(fmt.Sprintf("engine/N=%d", n), func(b *testing.B) {
			eng := micro.NewEngine()
			eng.UseMicro(model)
			var out []core.CandidateScore
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out, _, err = eng.ScoreCandidates(ctx, micro.ModelMicro, cands, 3, out); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(cands))*float64(b.N)/b.Elapsed().Seconds(), "cand/s")
		})
	}
}

// --- observability tax ---

// BenchmarkObsHistogramRecord prices one obs.Histogram.Record — the
// primitive every instrumented hot path pays per sample. It must stay
// a handful of nanoseconds and exactly zero allocations, or the
// observability layer has no business inside the scoring loop. The
// parallel sub-bench hammers one histogram from every hardware thread
// to expose the contended-cache-line cost a busy server actually sees.
func BenchmarkObsHistogramRecord(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		var h obs.Histogram
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Record(uint64(i)&0xFFFFF + 1)
		}
		if h.Snapshot().Count != uint64(b.N) {
			b.Fatal("histogram lost samples")
		}
	})
	b.Run("parallel", func(b *testing.B) {
		var h obs.Histogram
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			v := uint64(1)
			for pb.Next() {
				h.Record(v&0xFFFFF + 1)
				v += 2654435761 // Fibonacci-hash stride: cheap spread over buckets
			}
		})
		if h.Snapshot().Count != uint64(b.N) {
			b.Fatal("histogram lost samples")
		}
	})
}

// BenchmarkObsScoreBatch prices the instrumentation tax on the
// engine's hottest path: the same 4-worker batch scored with no
// observer attached (off) and with the full stage-timing + sampled
// per-score + predicted-CTR pipeline (on). The acceptance bar is the
// two staying within 5% of each other — the observer costs two
// monotonic clock reads per batch plus a 1-in-64 sampled score timing,
// which amortises to noise over a multi-thousand-request batch.
func BenchmarkObsScoreBatch(b *testing.B) {
	reqs, model := getEngineBench(b)
	ctx := context.Background()
	run := func(b *testing.B, eng *micro.Engine) {
		eng.UseMicro(model)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps := eng.ScoreBatch(ctx, reqs)
			if resps[0].Err != nil {
				b.Fatal(resps[0].Err)
			}
		}
		b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}
	b.Run("off", func(b *testing.B) {
		run(b, micro.NewEngine(micro.WithWorkers(4)))
	})
	b.Run("on", func(b *testing.B) {
		eo := &micro.EngineObserver{}
		eng := micro.NewEngine(micro.WithWorkers(4), micro.WithObserver(eo))
		run(b, eng)
		if eo.Batch.Snapshot().Count == 0 {
			b.Fatal("observer attached but batch stage never recorded")
		}
	})
}
